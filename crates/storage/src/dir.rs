//! Persistent object directory.
//!
//! Maps object names to their meta pages, rooted at page 0 (the
//! superblock), spilling onto chained pages when full. Both heaps and
//! B+trees are addressed by an immutable *meta page*, so directory entries
//! never need updating after creation.
//!
//! Record layout: `[kind u8][root u32][name utf8...]`.

use crate::buffer::BufferPool;
use crate::disk::PageId;
use crate::page::{SlottedPage, SlottedPageRef};
use parking_lot::Mutex;
use std::sync::Arc;
use tman_common::{Result, TmanError};

/// What a directory entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// A [`crate::heap::HeapFile`] meta page.
    Heap,
    /// A [`crate::btree::BTree`] meta page.
    BTree,
}

impl ObjectKind {
    fn code(self) -> u8 {
        match self {
            ObjectKind::Heap => 0,
            ObjectKind::BTree => 1,
        }
    }

    fn from_code(c: u8) -> Result<ObjectKind> {
        match c {
            0 => Ok(ObjectKind::Heap),
            1 => Ok(ObjectKind::BTree),
            _ => Err(TmanError::Storage(format!("bad object kind {c}"))),
        }
    }
}

/// A directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Object name (unique, case-sensitive).
    pub name: String,
    /// Object kind.
    pub kind: ObjectKind,
    /// Meta page of the object.
    pub root: PageId,
}

/// The name → object map for one store.
pub struct Directory {
    pool: Arc<BufferPool>,
    lock: Mutex<()>,
}

impl Directory {
    /// Open the directory of a store; formats page 0 if the store is fresh.
    pub fn open(pool: Arc<BufferPool>) -> Result<Directory> {
        {
            let g = pool.fetch(PageId(0))?;
            let mut w = g.write();
            // A fresh zero-filled page 0 has free_end == 0, impossible for a
            // formatted slotted page — use that to detect first open.
            let formatted = u16::from_le_bytes(w[6..8].try_into().unwrap()) != 0;
            if !formatted {
                SlottedPage::init(&mut w);
            }
        }
        Ok(Directory {
            pool,
            lock: Mutex::new(()),
        })
    }

    fn encode(entry: &DirEntry) -> Vec<u8> {
        let mut rec = Vec::with_capacity(5 + entry.name.len());
        rec.push(entry.kind.code());
        rec.extend_from_slice(&entry.root.0.to_le_bytes());
        rec.extend_from_slice(entry.name.as_bytes());
        rec
    }

    fn decode(rec: &[u8]) -> Result<DirEntry> {
        if rec.len() < 5 {
            return Err(TmanError::Storage("truncated directory entry".into()));
        }
        Ok(DirEntry {
            kind: ObjectKind::from_code(rec[0])?,
            root: PageId(u32::from_le_bytes(rec[1..5].try_into().unwrap())),
            name: String::from_utf8(rec[5..].to_vec())
                .map_err(|e| TmanError::Storage(format!("bad directory name: {e}")))?,
        })
    }

    /// Visit each entry; `f` returns false to stop. Returns the location of
    /// the last visited entry when stopped early.
    fn scan_entries(&self, mut f: impl FnMut(&DirEntry) -> bool) -> Result<Option<(PageId, u16)>> {
        let mut pid = PageId(0);
        loop {
            let g = self.pool.fetch(pid)?;
            let r = g.read();
            let sp = SlottedPageRef::new(&r);
            for (slot, rec) in sp.records() {
                let entry = Self::decode(rec)?;
                if !f(&entry) {
                    return Ok(Some((pid, slot)));
                }
            }
            let next = sp.next_page();
            if next.is_null() {
                return Ok(None);
            }
            pid = next;
        }
    }

    /// Register a new object. Errors if the name is taken.
    pub fn create(&self, name: &str, kind: ObjectKind, root: PageId) -> Result<()> {
        let _l = self.lock.lock();
        let mut exists = false;
        self.scan_entries(|e| {
            if e.name == name {
                exists = true;
                false
            } else {
                true
            }
        })?;
        if exists {
            return Err(TmanError::AlreadyExists(format!("object '{name}'")));
        }
        let rec = Self::encode(&DirEntry {
            name: name.to_string(),
            kind,
            root,
        });
        // Walk the chain looking for room, extending it at the end.
        let mut pid = PageId(0);
        loop {
            let g = self.pool.fetch(pid)?;
            let mut w = g.write();
            let mut sp = SlottedPage::new(&mut w);
            if sp.insert(&rec).is_some() {
                return Ok(());
            }
            let next = sp.next_page();
            if !next.is_null() {
                drop(w);
                pid = next;
                continue;
            }
            let (new_pid, ng) = self.pool.allocate()?;
            let mut nw = ng.write();
            let mut np = SlottedPage::init(&mut nw);
            np.insert(&rec)
                .ok_or_else(|| TmanError::Storage("directory entry too large".into()))?;
            drop(nw);
            sp.set_next_page(new_pid);
            return Ok(());
        }
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Result<DirEntry> {
        let mut found = None;
        self.scan_entries(|e| {
            if e.name == name {
                found = Some(e.clone());
                false
            } else {
                true
            }
        })?;
        found.ok_or_else(|| TmanError::NotFound(format!("object '{name}'")))
    }

    /// True if the name exists.
    pub fn exists(&self, name: &str) -> Result<bool> {
        Ok(self.get(name).is_ok())
    }

    /// Remove an entry (the object's pages are leaked).
    pub fn remove(&self, name: &str) -> Result<()> {
        let _l = self.lock.lock();
        let loc = self.scan_entries(|e| e.name != name)?;
        let Some((pid, slot)) = loc else {
            return Err(TmanError::NotFound(format!("object '{name}'")));
        };
        let g = self.pool.fetch(pid)?;
        let mut w = g.write();
        SlottedPage::new(&mut w).delete(slot);
        Ok(())
    }

    /// Crash-recovery revalidation: re-initialize quarantined (zeroed)
    /// directory chain pages, cut chain links pointing out of bounds, and
    /// prune entries whose meta page is out of bounds (an object whose
    /// creation never fully reached disk). Returns the pruned names.
    pub fn repair(&self, num_pages: u32) -> Result<Vec<String>> {
        {
            let _l = self.lock.lock();
            let mut visited = std::collections::HashSet::new();
            let mut pid = PageId(0);
            loop {
                if !visited.insert(pid) {
                    break;
                }
                let g = self.pool.fetch(pid)?;
                let mut w = g.write();
                let free_end = u16::from_le_bytes(w[6..8].try_into().unwrap());
                if free_end == 0 {
                    SlottedPage::init(&mut w);
                }
                let mut sp = SlottedPage::new(&mut w);
                let next = sp.next_page();
                if next.is_null() {
                    break;
                }
                if next.0 >= num_pages {
                    sp.set_next_page(PageId::NULL);
                    break;
                }
                pid = next;
            }
        }
        let mut bad = Vec::new();
        self.scan_entries(|e| {
            if e.root.is_null() || e.root.0 >= num_pages {
                bad.push(e.name.clone());
            }
            true
        })?;
        for name in &bad {
            self.remove(name)?;
        }
        Ok(bad)
    }

    /// All entries, in storage order.
    pub fn list(&self) -> Result<Vec<DirEntry>> {
        let mut out = Vec::new();
        self.scan_entries(|e| {
            out.push(e.clone());
            true
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;

    fn dir() -> Directory {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::open_memory()), 32));
        Directory::open(pool).unwrap()
    }

    #[test]
    fn create_get_remove() {
        let d = dir();
        d.create("emp", ObjectKind::Heap, PageId(10)).unwrap();
        d.create("emp_idx", ObjectKind::BTree, PageId(11)).unwrap();
        let e = d.get("emp").unwrap();
        assert_eq!(e.kind, ObjectKind::Heap);
        assert_eq!(e.root, PageId(10));
        assert!(d.exists("emp_idx").unwrap());
        assert!(matches!(
            d.create("emp", ObjectKind::Heap, PageId(12)),
            Err(TmanError::AlreadyExists(_))
        ));
        d.remove("emp").unwrap();
        assert!(!d.exists("emp").unwrap());
        assert!(d.remove("emp").is_err());
    }

    #[test]
    fn spills_across_pages() {
        let d = dir();
        // Enough entries to overflow page 0 (each ~40 bytes incl. slot).
        for i in 0..300 {
            d.create(
                &format!("const_table_signature_number_{i:04}"),
                ObjectKind::Heap,
                PageId(100 + i),
            )
            .unwrap();
        }
        assert_eq!(d.list().unwrap().len(), 300);
        assert_eq!(
            d.get("const_table_signature_number_0250").unwrap().root,
            PageId(350)
        );
    }

    #[test]
    fn reopen_preserves_entries() {
        let path = std::env::temp_dir().join(format!("tman_dir_{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let pool = Arc::new(BufferPool::new(
                Arc::new(DiskManager::open_file(&path).unwrap()),
                8,
            ));
            let d = Directory::open(pool.clone()).unwrap();
            d.create("catalog", ObjectKind::Heap, PageId(5)).unwrap();
            pool.flush_all().unwrap();
        }
        {
            let pool = Arc::new(BufferPool::new(
                Arc::new(DiskManager::open_file(&path).unwrap()),
                8,
            ));
            let d = Directory::open(pool).unwrap();
            assert_eq!(d.get("catalog").unwrap().root, PageId(5));
        }
        let _ = std::fs::remove_file(&path);
    }
}
