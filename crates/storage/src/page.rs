//! Slotted-page layout.
//!
//! Every data page (heap pages, B+tree nodes reuse only the raw bytes)
//! follows the classic slotted layout so records can be variable length and
//! slots are stable under intra-page compaction:
//!
//! ```text
//! 0..4    next_page  u32   page-chain link (0 = none; page 0 is the
//!                          directory superblock and never a chain target)
//! 4..6    num_slots  u16
//! 6..8    free_end   u16   records occupy [free_end .. PAGE_SIZE)
//! 8..     slot array       4 bytes per slot: rec_offset u16, rec_len u16
//! ```
//!
//! A deleted slot keeps its array entry with `rec_offset == TOMBSTONE` so
//! record ids held elsewhere stay stable; the slot is reused by later
//! inserts.

use crate::disk::{PageId, PAGE_SIZE};

const HDR: usize = 8;
const SLOT: usize = 4;
const TOMBSTONE: u16 = u16::MAX;

/// Largest record a page can hold (one slot, empty page).
pub const MAX_RECORD: usize = PAGE_SIZE - HDR - SLOT;

/// Read-only slotted-page view over a raw page buffer.
pub struct SlottedPageRef<'a> {
    buf: &'a [u8; PAGE_SIZE],
}

impl<'a> SlottedPageRef<'a> {
    /// Wrap an existing, already-initialized page for reading.
    pub fn new(buf: &'a [u8; PAGE_SIZE]) -> SlottedPageRef<'a> {
        SlottedPageRef { buf }
    }

    /// Page-chain link.
    pub fn next_page(&self) -> PageId {
        PageId(u32::from_le_bytes(self.buf[0..4].try_into().unwrap()))
    }

    /// Number of slot-array entries (live + tombstoned).
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes(self.buf[4..6].try_into().unwrap())
    }

    fn slot(&self, i: u16) -> (u16, u16) {
        let off = HDR + i as usize * SLOT;
        (
            u16::from_le_bytes(self.buf[off..off + 2].try_into().unwrap()),
            u16::from_le_bytes(self.buf[off + 2..off + 4].try_into().unwrap()),
        )
    }

    /// Record bytes at `slot`, or `None` if deleted / out of range.
    pub fn get(&self, slot: u16) -> Option<&'a [u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == TOMBSTONE {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Iterate live `(slot, record)` pairs.
    pub fn records(&self) -> impl Iterator<Item = (u16, &'a [u8])> + '_ {
        let me = SlottedPageRef { buf: self.buf };
        (0..self.slot_count()).filter_map(move |i| me.get(i).map(|r| (i, r)))
    }
}

/// Mutable slotted-page view over a raw page buffer.
pub struct SlottedPage<'a> {
    buf: &'a mut [u8; PAGE_SIZE],
}

impl<'a> SlottedPage<'a> {
    /// Wrap an existing, already-initialized page.
    pub fn new(buf: &'a mut [u8; PAGE_SIZE]) -> SlottedPage<'a> {
        SlottedPage { buf }
    }

    /// Wrap and format a fresh page (zero slots, empty record area).
    pub fn init(buf: &'a mut [u8; PAGE_SIZE]) -> SlottedPage<'a> {
        buf[0..4].copy_from_slice(&0u32.to_le_bytes());
        buf[4..6].copy_from_slice(&0u16.to_le_bytes());
        buf[6..8].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        SlottedPage { buf }
    }

    /// Page-chain link.
    pub fn next_page(&self) -> PageId {
        PageId(u32::from_le_bytes(self.buf[0..4].try_into().unwrap()))
    }

    /// Set the page-chain link.
    pub fn set_next_page(&mut self, pid: PageId) {
        self.buf[0..4].copy_from_slice(&pid.0.to_le_bytes());
    }

    /// Number of slot-array entries (live + tombstoned).
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes(self.buf[4..6].try_into().unwrap())
    }

    fn set_slot_count(&mut self, n: u16) {
        self.buf[4..6].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> usize {
        u16::from_le_bytes(self.buf[6..8].try_into().unwrap()) as usize
    }

    fn set_free_end(&mut self, v: usize) {
        self.buf[6..8].copy_from_slice(&(v as u16).to_le_bytes());
    }

    fn slot(&self, i: u16) -> (u16, u16) {
        let off = HDR + i as usize * SLOT;
        (
            u16::from_le_bytes(self.buf[off..off + 2].try_into().unwrap()),
            u16::from_le_bytes(self.buf[off + 2..off + 4].try_into().unwrap()),
        )
    }

    fn set_slot(&mut self, i: u16, rec_off: u16, rec_len: u16) {
        let off = HDR + i as usize * SLOT;
        self.buf[off..off + 2].copy_from_slice(&rec_off.to_le_bytes());
        self.buf[off + 2..off + 4].copy_from_slice(&rec_len.to_le_bytes());
    }

    /// Bytes of contiguous free space (between slot array and record area).
    pub fn contiguous_free(&self) -> usize {
        self.free_end() - (HDR + self.slot_count() as usize * SLOT)
    }

    /// Total reclaimable free space, counting holes left by deletions.
    pub fn total_free(&self) -> usize {
        let live: usize = (0..self.slot_count())
            .filter_map(|i| {
                let (o, l) = self.slot(i);
                (o != TOMBSTONE).then_some(l as usize)
            })
            .sum();
        PAGE_SIZE - HDR - self.slot_count() as usize * SLOT - live
    }

    /// Does `len` bytes fit (possibly after compaction / slot reuse)?
    pub fn fits(&self, len: usize) -> bool {
        let slot_cost = if self.has_free_slot() { 0 } else { SLOT };
        self.total_free() >= len + slot_cost
    }

    fn has_free_slot(&self) -> bool {
        (0..self.slot_count()).any(|i| self.slot(i).0 == TOMBSTONE)
    }

    /// Insert a record, returning its slot, or `None` if it cannot fit.
    pub fn insert(&mut self, rec: &[u8]) -> Option<u16> {
        if rec.len() > MAX_RECORD || !self.fits(rec.len()) {
            return None;
        }
        let need_new_slot = !self.has_free_slot();
        let slot_cost = if need_new_slot { SLOT } else { 0 };
        if self.contiguous_free() < rec.len() + slot_cost {
            self.compact();
        }
        debug_assert!(self.contiguous_free() >= rec.len() + slot_cost);
        let slot_idx = if need_new_slot {
            let i = self.slot_count();
            self.set_slot_count(i + 1);
            i
        } else {
            (0..self.slot_count())
                .find(|&i| self.slot(i).0 == TOMBSTONE)
                .expect("free slot exists")
        };
        let new_end = self.free_end() - rec.len();
        self.buf[new_end..new_end + rec.len()].copy_from_slice(rec);
        self.set_free_end(new_end);
        self.set_slot(slot_idx, new_end as u16, rec.len() as u16);
        Some(slot_idx)
    }

    /// Record bytes at `slot`, or `None` if deleted / out of range.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == TOMBSTONE {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Tombstone a record. Returns false if it was already dead.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.slot_count() || self.slot(slot).0 == TOMBSTONE {
            return false;
        }
        self.set_slot(slot, TOMBSTONE, 0);
        true
    }

    /// Replace the record in `slot`. Succeeds if the new bytes fit in the
    /// page (possibly after compaction); the slot number is preserved.
    pub fn update(&mut self, slot: u16, rec: &[u8]) -> bool {
        if slot >= self.slot_count() || rec.len() > MAX_RECORD {
            return false;
        }
        let (off, len) = self.slot(slot);
        if off == TOMBSTONE {
            return false;
        }
        if rec.len() <= len as usize {
            // Shrink / same-size: rewrite in place.
            let off = off as usize;
            self.buf[off..off + rec.len()].copy_from_slice(rec);
            self.set_slot(slot, off as u16, rec.len() as u16);
            return true;
        }
        // Grows: tombstone, check space, then place like an insert but into
        // the existing slot.
        self.set_slot(slot, TOMBSTONE, 0);
        if self.total_free() < rec.len() {
            self.set_slot(slot, off, len); // roll back
            return false;
        }
        if self.contiguous_free() < rec.len() {
            self.compact();
        }
        let new_end = self.free_end() - rec.len();
        self.buf[new_end..new_end + rec.len()].copy_from_slice(rec);
        self.set_free_end(new_end);
        self.set_slot(slot, new_end as u16, rec.len() as u16);
        true
    }

    /// Iterate live `(slot, record)` pairs.
    pub fn records(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |i| self.get(i).map(|r| (i, r)))
    }

    /// Rewrite the record area to squeeze out holes. Slot numbers are
    /// preserved (only offsets change).
    pub fn compact(&mut self) {
        let mut live: Vec<(u16, Vec<u8>)> = (0..self.slot_count())
            .filter_map(|i| self.get(i).map(|r| (i, r.to_vec())))
            .collect();
        // Pack from the end of the page downward.
        let mut end = PAGE_SIZE;
        for (slot, rec) in live.drain(..) {
            end -= rec.len();
            self.buf[end..end + rec.len()].copy_from_slice(&rec);
            self.set_slot(slot, end as u16, rec.len() as u16);
        }
        self.set_free_end(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fresh() -> Box<[u8; PAGE_SIZE]> {
        Box::new([0u8; PAGE_SIZE])
    }

    #[test]
    fn insert_get_delete() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"bravo!").unwrap();
        assert_eq!(p.get(a).unwrap(), b"alpha");
        assert_eq!(p.get(b).unwrap(), b"bravo!");
        assert!(p.delete(a));
        assert!(p.get(a).is_none());
        assert!(!p.delete(a)); // double delete
        assert_eq!(p.records().count(), 1);
    }

    #[test]
    fn slot_reuse_after_delete() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"one").unwrap();
        let _b = p.insert(b"two").unwrap();
        p.delete(a);
        let c = p.insert(b"three").unwrap();
        assert_eq!(c, a, "tombstoned slot should be reused");
        assert_eq!(p.get(c).unwrap(), b"three");
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 104 bytes per record (100 + 4 slot) into 4088 usable.
        assert_eq!(n, (PAGE_SIZE - HDR) / 104);
        assert!(!p.fits(100));
        assert!(p.fits(10)); // smaller still fits
    }

    #[test]
    fn oversized_record_rejected() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        assert!(p.insert(&vec![0u8; MAX_RECORD + 1]).is_none());
        assert!(p.insert(&vec![1u8; MAX_RECORD]).is_some());
    }

    #[test]
    fn compaction_reclaims_holes() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        let mut slots = vec![];
        let rec = [9u8; 200];
        while let Some(s) = p.insert(&rec) {
            slots.push(s);
        }
        // Delete every other record; contiguous space is still tiny but
        // total free space is large.
        for s in slots.iter().step_by(2) {
            p.delete(*s);
        }
        assert!(p.contiguous_free() < 400);
        let big = [1u8; 350];
        let s = p.insert(&big).expect("compaction should make room");
        assert_eq!(p.get(s).unwrap(), &big[..]);
        // Survivors intact.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.get(*s).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn update_shrink_grow() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        let s = p.insert(b"0123456789").unwrap();
        assert!(p.update(s, b"abc"));
        assert_eq!(p.get(s).unwrap(), b"abc");
        assert!(p.update(s, b"abcdefghijklmnop"));
        assert_eq!(p.get(s).unwrap(), b"abcdefghijklmnop");
    }

    #[test]
    fn update_too_big_rolls_back() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        // Nearly fill the page.
        let s = p.insert(&vec![3u8; 2000]).unwrap();
        p.insert(&vec![4u8; 2000]).unwrap();
        assert!(!p.update(s, &vec![5u8; 3000]));
        assert_eq!(p.get(s).unwrap(), &vec![3u8; 2000][..], "rolled back");
    }

    #[test]
    fn next_page_link() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        assert!(p.next_page().is_null());
        p.set_next_page(PageId(42));
        assert_eq!(p.next_page(), PageId(42));
    }

    proptest! {
        // Random op sequence vs. a Vec<Option<Vec<u8>>> model.
        #[test]
        fn prop_model_check(ops in proptest::collection::vec(op_strategy(), 1..80)) {
            let mut buf = fresh();
            let mut p = SlottedPage::init(&mut buf);
            let mut model: Vec<Option<Vec<u8>>> = vec![];
            for op in ops {
                match op {
                    Op::Insert(rec) => {
                        if let Some(slot) = p.insert(&rec) {
                            let slot = slot as usize;
                            if slot == model.len() {
                                model.push(Some(rec));
                            } else {
                                prop_assert!(model[slot].is_none());
                                model[slot] = Some(rec);
                            }
                        }
                    }
                    Op::Delete(i) => {
                        let slot = if model.is_empty() { 0 } else { i % model.len() };
                        let expect = model.get(slot).map(|m| m.is_some()).unwrap_or(false);
                        prop_assert_eq!(p.delete(slot as u16), expect);
                        if let Some(m) = model.get_mut(slot) {
                            *m = None;
                        }
                    }
                    Op::Update(i, rec) => {
                        let slot = if model.is_empty() { 0 } else { i % model.len() };
                        let alive = model.get(slot).map(|m| m.is_some()).unwrap_or(false);
                        let ok = p.update(slot as u16, &rec);
                        if ok {
                            prop_assert!(alive);
                            model[slot] = Some(rec);
                        }
                    }
                }
                // Full consistency check against the model.
                for (i, m) in model.iter().enumerate() {
                    prop_assert_eq!(p.get(i as u16).map(|r| r.to_vec()), m.clone());
                }
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Delete(usize),
        Update(usize, Vec<u8>),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..300).prop_map(Op::Insert),
            any::<usize>().prop_map(Op::Delete),
            (
                any::<usize>(),
                proptest::collection::vec(any::<u8>(), 0..300)
            )
                .prop_map(|(i, r)| Op::Update(i, r)),
        ]
    }
}
