//! Heap files: unordered record storage over a page chain.
//!
//! Layout: one *meta page* (its id is the heap's stable identity in the
//! directory) holding the first/last page of a chain of slotted data pages
//! plus a free-space hint. Records larger than a page spill to an overflow
//! chain. Record ids (`page`, `slot`) are stable across intra-page
//! compaction; updates keep the rid when the new value fits on the same
//! page and return a fresh rid otherwise.

use crate::buffer::BufferPool;
use crate::disk::{PageId, PAGE_SIZE};
use crate::page::{SlottedPage, SlottedPageRef, MAX_RECORD};
use std::sync::Arc;
use tman_common::{Result, TmanError};

/// Stable address of a record in a heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Data page holding the record (or its overflow stub).
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Pack into a u64 (for storing rids inside index entries).
    pub fn to_u64(self) -> u64 {
        ((self.page.0 as u64) << 16) | self.slot as u64
    }

    /// Unpack from [`to_u64`](Self::to_u64).
    pub fn from_u64(v: u64) -> RecordId {
        RecordId {
            page: PageId((v >> 16) as u32),
            slot: (v & 0xFFFF) as u16,
        }
    }
}

// Meta page layout (not slotted):
//   0..4   magic "HEAP"
//   4..8   first data page
//   8..12  last data page (insert hint)
//   12..16 free-space hint page (0 = none)
const MAGIC: &[u8; 4] = b"HEAP";

// Record header byte.
const REC_INLINE: u8 = 0;
const REC_OVERFLOW: u8 = 1;

// Overflow page layout: 0..4 next page, 4..8 chunk length, 8.. chunk bytes.
const OVF_HDR: usize = 8;
const OVF_CAP: usize = PAGE_SIZE - OVF_HDR;

/// An unordered record file.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    meta: PageId,
}

impl HeapFile {
    /// Create a fresh heap (meta page + one empty data page).
    pub fn create(pool: Arc<BufferPool>) -> Result<HeapFile> {
        let (meta_pid, meta) = pool.allocate()?;
        let (first_pid, first) = pool.allocate()?;
        SlottedPage::init(&mut first.write());
        {
            let mut m = meta.write();
            m[0..4].copy_from_slice(MAGIC);
            m[4..8].copy_from_slice(&first_pid.0.to_le_bytes());
            m[8..12].copy_from_slice(&first_pid.0.to_le_bytes());
            m[12..16].copy_from_slice(&0u32.to_le_bytes());
        }
        Ok(HeapFile {
            pool,
            meta: meta_pid,
        })
    }

    /// Open an existing heap by its meta page.
    pub fn open(pool: Arc<BufferPool>, meta: PageId) -> Result<HeapFile> {
        let g = pool.fetch(meta)?;
        if &g.read()[0..4] != MAGIC {
            return Err(TmanError::Storage(format!(
                "page {} is not a heap meta page",
                meta.0
            )));
        }
        drop(g);
        Ok(HeapFile { pool, meta })
    }

    /// The meta page id (stable identity for the directory).
    pub fn meta_page(&self) -> PageId {
        self.meta
    }

    /// Rebuild a heap whose meta page was lost (quarantined): rewrite the
    /// meta in place pointing at a fresh empty data page. Previous rows are
    /// unreachable without the meta; callers repopulate from their source
    /// of truth.
    pub fn reformat(pool: Arc<BufferPool>, meta: PageId) -> Result<HeapFile> {
        let (first_pid, first) = pool.allocate()?;
        SlottedPage::init(&mut first.write());
        let g = pool.fetch(meta)?;
        {
            let mut m = g.write();
            m[0..4].copy_from_slice(MAGIC);
            m[4..8].copy_from_slice(&first_pid.0.to_le_bytes());
            m[8..12].copy_from_slice(&first_pid.0.to_le_bytes());
            m[12..16].copy_from_slice(&0u32.to_le_bytes());
        }
        Ok(HeapFile { pool, meta })
    }

    /// Crash-recovery revalidation: re-initialize quarantined (zeroed)
    /// chain pages so inserts cannot underflow, cut chain links that point
    /// out of bounds, re-find the true tail, and clear dangling free-space
    /// hints. Bounded by a visited set so a damaged chain cannot loop.
    /// Returns `true` when anything was fixed.
    pub fn repair(&self) -> Result<bool> {
        let (first, last, free_hint) = self.read_meta()?;
        let num_pages = self.pool.disk().num_pages();
        let mut changed = false;
        let mut visited = std::collections::HashSet::new();
        let mut pid = first;
        let mut tail = first;
        while !pid.is_null() && visited.insert(pid) {
            let g = self.pool.fetch(pid)?;
            let mut w = g.write();
            let free_end = u16::from_le_bytes(w[6..8].try_into().unwrap());
            if free_end == 0 {
                // Never formatted / zeroed by quarantine: re-init so the
                // insert path sees a well-formed empty page.
                SlottedPage::init(&mut w);
                changed = true;
            }
            let mut sp = SlottedPage::new(&mut w);
            let next = sp.next_page();
            if !next.is_null() && next.0 >= num_pages {
                sp.set_next_page(PageId::NULL);
                changed = true;
                tail = pid;
                break;
            }
            tail = pid;
            drop(w);
            pid = next;
        }
        if last != tail {
            self.write_meta_field(8, tail)?;
            changed = true;
        }
        if !free_hint.is_null() && !visited.contains(&free_hint) {
            self.write_meta_field(12, PageId::NULL)?;
            changed = true;
        }
        Ok(changed)
    }

    fn read_meta(&self) -> Result<(PageId, PageId, PageId)> {
        let g = self.pool.fetch(self.meta)?;
        let m = g.read();
        Ok((
            PageId(u32::from_le_bytes(m[4..8].try_into().unwrap())),
            PageId(u32::from_le_bytes(m[8..12].try_into().unwrap())),
            PageId(u32::from_le_bytes(m[12..16].try_into().unwrap())),
        ))
    }

    fn write_meta_field(&self, offset: usize, pid: PageId) -> Result<()> {
        let g = self.pool.fetch(self.meta)?;
        g.write()[offset..offset + 4].copy_from_slice(&pid.0.to_le_bytes());
        Ok(())
    }

    /// Insert a record, returning its id.
    pub fn insert(&self, rec: &[u8]) -> Result<RecordId> {
        if rec.len() + 1 > MAX_RECORD {
            let stub = self.write_overflow(rec)?;
            return self.insert_framed(&stub);
        }
        let mut framed = Vec::with_capacity(rec.len() + 1);
        framed.push(REC_INLINE);
        framed.extend_from_slice(rec);
        self.insert_framed(&framed)
    }

    fn insert_framed(&self, framed: &[u8]) -> Result<RecordId> {
        let (_, last, free_hint) = self.read_meta()?;
        // Try the free-space hint first (reuses holes left by deletes),
        // then the tail, then extend the chain.
        if !free_hint.is_null() && free_hint != last {
            let g = self.pool.fetch(free_hint)?;
            let mut w = g.write();
            let mut sp = SlottedPage::new(&mut w);
            if let Some(slot) = sp.insert(framed) {
                return Ok(RecordId {
                    page: free_hint,
                    slot,
                });
            }
            drop(w);
            // Hint exhausted; clear it.
            self.write_meta_field(12, PageId::NULL)?;
        }
        let mut pid = last;
        loop {
            let g = self.pool.fetch(pid)?;
            let mut w = g.write();
            let mut sp = SlottedPage::new(&mut w);
            if let Some(slot) = sp.insert(framed) {
                if pid != last {
                    self.write_meta_field(8, pid)?;
                }
                return Ok(RecordId { page: pid, slot });
            }
            let next = sp.next_page();
            if !next.is_null() {
                drop(w);
                pid = next;
                continue;
            }
            // Extend the chain while holding the tail's write lock so
            // concurrent inserts cannot both link a new tail.
            let (new_pid, new_guard) = self.pool.allocate()?;
            let mut nw = new_guard.write();
            let mut np = SlottedPage::init(&mut nw);
            let slot = np
                .insert(framed)
                .ok_or_else(|| TmanError::Storage("record too large for empty page".into()))?;
            drop(nw);
            sp.set_next_page(new_pid);
            drop(w);
            self.write_meta_field(8, new_pid)?;
            return Ok(RecordId {
                page: new_pid,
                slot,
            });
        }
    }

    fn write_overflow(&self, rec: &[u8]) -> Result<Vec<u8>> {
        // Build the chain back-to-front so each page can link to the next.
        let mut next = PageId::NULL;
        for chunk in rec.chunks(OVF_CAP).rev() {
            let (pid, g) = self.pool.allocate()?;
            let mut w = g.write();
            w[0..4].copy_from_slice(&next.0.to_le_bytes());
            w[4..8].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
            w[OVF_HDR..OVF_HDR + chunk.len()].copy_from_slice(chunk);
            next = pid;
        }
        let mut stub = Vec::with_capacity(9);
        stub.push(REC_OVERFLOW);
        stub.extend_from_slice(&next.0.to_le_bytes());
        stub.extend_from_slice(&(rec.len() as u32).to_le_bytes());
        Ok(stub)
    }

    fn read_overflow(&self, stub: &[u8]) -> Result<Vec<u8>> {
        let mut pid = PageId(u32::from_le_bytes(stub[1..5].try_into().unwrap()));
        let total = u32::from_le_bytes(stub[5..9].try_into().unwrap()) as usize;
        let mut out = Vec::with_capacity(total);
        while !pid.is_null() {
            let g = self.pool.fetch(pid)?;
            let r = g.read();
            let next = PageId(u32::from_le_bytes(r[0..4].try_into().unwrap()));
            let len = u32::from_le_bytes(r[4..8].try_into().unwrap()) as usize;
            out.extend_from_slice(&r[OVF_HDR..OVF_HDR + len]);
            pid = next;
        }
        if out.len() != total {
            return Err(TmanError::Storage(format!(
                "overflow chain length {} != {}",
                out.len(),
                total
            )));
        }
        Ok(out)
    }

    fn unframe(&self, framed: &[u8]) -> Result<Vec<u8>> {
        match framed.first() {
            Some(&REC_INLINE) => Ok(framed[1..].to_vec()),
            Some(&REC_OVERFLOW) => self.read_overflow(framed),
            _ => Err(TmanError::Storage("corrupt record header".into())),
        }
    }

    /// Fetch a record by id.
    pub fn get(&self, rid: RecordId) -> Result<Vec<u8>> {
        let g = self.pool.fetch(rid.page)?;
        let r = g.read();
        let sp = SlottedPageRef::new(&r);
        let framed = sp
            .get(rid.slot)
            .ok_or_else(|| TmanError::NotFound(format!("record {rid:?}")))?
            .to_vec();
        drop(r);
        self.unframe(&framed)
    }

    /// Delete a record. Overflow pages, if any, are leaked (no free-page
    /// list in this reproduction).
    pub fn delete(&self, rid: RecordId) -> Result<()> {
        let g = self.pool.fetch(rid.page)?;
        let mut w = g.write();
        let mut sp = SlottedPage::new(&mut w);
        if !sp.delete(rid.slot) {
            return Err(TmanError::NotFound(format!("record {rid:?}")));
        }
        drop(w);
        // Remember this page as having space for future inserts.
        self.write_meta_field(12, rid.page)?;
        Ok(())
    }

    /// Update a record. Returns the (possibly new) record id.
    pub fn update(&self, rid: RecordId, rec: &[u8]) -> Result<RecordId> {
        let framed = if rec.len() + 1 > MAX_RECORD {
            self.write_overflow(rec)?
        } else {
            let mut f = Vec::with_capacity(rec.len() + 1);
            f.push(REC_INLINE);
            f.extend_from_slice(rec);
            f
        };
        {
            let g = self.pool.fetch(rid.page)?;
            let mut w = g.write();
            let mut sp = SlottedPage::new(&mut w);
            if sp.get(rid.slot).is_none() {
                return Err(TmanError::NotFound(format!("record {rid:?}")));
            }
            if sp.update(rid.slot, &framed) {
                return Ok(rid);
            }
            // No room on this page: tombstone here, reinsert elsewhere.
            sp.delete(rid.slot);
        }
        self.insert_framed(&framed)
    }

    /// Visit every live record. `f` returns `false` to stop early.
    /// Records are copied out page-at-a-time so no page lock is held while
    /// `f` runs (f may call back into the heap).
    pub fn scan(&self, mut f: impl FnMut(RecordId, &[u8]) -> Result<bool>) -> Result<()> {
        let (first, _, _) = self.read_meta()?;
        let mut pid = first;
        let mut page_recs: Vec<(u16, Vec<u8>)> = Vec::new();
        while !pid.is_null() {
            let next;
            {
                let g = self.pool.fetch(pid)?;
                let r = g.read();
                let sp = SlottedPageRef::new(&r);
                next = sp.next_page();
                page_recs.clear();
                for (slot, rec) in sp.records() {
                    page_recs.push((slot, rec.to_vec()));
                }
            }
            for (slot, framed) in page_recs.drain(..) {
                let rec = self.unframe(&framed)?;
                if !f(RecordId { page: pid, slot }, &rec)? {
                    return Ok(());
                }
            }
            pid = next;
        }
        Ok(())
    }

    /// Materialize all records (tests / small tables).
    pub fn scan_all(&self) -> Result<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan(|rid, rec| {
            out.push((rid, rec.to_vec()));
            Ok(true)
        })?;
        Ok(out)
    }

    /// Number of live records (full scan).
    pub fn count(&self) -> Result<usize> {
        let mut n = 0;
        self.scan(|_, _| {
            n += 1;
            Ok(true)
        })?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;

    fn heap() -> HeapFile {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::open_memory()), 64));
        HeapFile::create(pool).unwrap()
    }

    #[test]
    fn insert_get_delete_update() {
        let h = heap();
        let a = h.insert(b"aaa").unwrap();
        let b = h.insert(b"bbb").unwrap();
        assert_eq!(h.get(a).unwrap(), b"aaa");
        assert_eq!(h.get(b).unwrap(), b"bbb");
        let a2 = h.update(a, b"AAAA").unwrap();
        assert_eq!(a2, a, "in-place update keeps rid");
        assert_eq!(h.get(a).unwrap(), b"AAAA");
        h.delete(b).unwrap();
        assert!(h.get(b).is_err());
        assert!(h.delete(b).is_err());
    }

    #[test]
    fn spans_many_pages() {
        let h = heap();
        let mut rids = vec![];
        for i in 0..2000u32 {
            rids.push(h.insert(format!("record-{i:06}").as_bytes()).unwrap());
        }
        let pages: std::collections::HashSet<_> = rids.iter().map(|r| r.page).collect();
        assert!(pages.len() > 5, "should span pages, got {}", pages.len());
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap(), format!("record-{i:06}").as_bytes());
        }
        assert_eq!(h.count().unwrap(), 2000);
    }

    #[test]
    fn scan_sees_all_live_records() {
        let h = heap();
        let mut rids = vec![];
        for i in 0..100u32 {
            rids.push(h.insert(&i.to_le_bytes()).unwrap());
        }
        for rid in rids.iter().step_by(3) {
            h.delete(*rid).unwrap();
        }
        let seen = h.scan_all().unwrap();
        assert_eq!(seen.len(), 100 - 100usize.div_ceil(3));
        for (rid, _) in &seen {
            assert!(!rids.iter().step_by(3).any(|d| d == rid));
        }
    }

    #[test]
    fn deleted_space_is_reused() {
        let h = heap();
        let mut rids = vec![];
        for _ in 0..500 {
            rids.push(h.insert(&[7u8; 64]).unwrap());
        }
        let pages_before = h.pool.disk().num_pages();
        for rid in &rids {
            h.delete(*rid).unwrap();
        }
        for _ in 0..200 {
            h.insert(&[8u8; 64]).unwrap();
        }
        // Reuse at least some holes rather than growing the file linearly.
        let grown = h.pool.disk().num_pages() - pages_before;
        assert!(grown <= 4, "grew {grown} pages despite free space");
    }

    #[test]
    fn overflow_records_roundtrip() {
        let h = heap();
        let big: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let rid = h.insert(&big).unwrap();
        assert_eq!(h.get(rid).unwrap(), big);
        // Update to a different big value.
        let big2: Vec<u8> = (0..15_000u32).map(|i| (i % 13) as u8).collect();
        let rid2 = h.update(rid, &big2).unwrap();
        assert_eq!(h.get(rid2).unwrap(), big2);
        // And shrink back to a small inline record.
        let rid3 = h.update(rid2, b"tiny").unwrap();
        assert_eq!(h.get(rid3).unwrap(), b"tiny");
        // Scan returns the full overflow payload too.
        let all = h.scan_all().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1, b"tiny");
    }

    #[test]
    fn update_that_moves_returns_new_rid() {
        let h = heap();
        // Fill a page almost completely so a grow-update must relocate.
        let first = h.insert(&[1u8; 1500]).unwrap();
        let _fill1 = h.insert(&[2u8; 1500]).unwrap();
        let _fill2 = h.insert(&[3u8; 1000]).unwrap();
        let moved = h.update(first, &[9u8; 2500]).unwrap();
        assert_ne!(moved.page, first.page);
        assert_eq!(h.get(moved).unwrap(), vec![9u8; 2500]);
        assert!(h.get(first).is_err(), "old rid is dead after relocation");
    }

    #[test]
    fn concurrent_inserts_are_all_visible() {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::open_memory()), 256));
        let h = Arc::new(HeapFile::create(pool).unwrap());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    let mut rids = vec![];
                    for i in 0..300u32 {
                        let payload = format!("t{t}-{i}");
                        rids.push((h.insert(payload.as_bytes()).unwrap(), payload));
                    }
                    rids
                })
            })
            .collect();
        let mut all = vec![];
        for t in threads {
            all.extend(t.join().unwrap());
        }
        assert_eq!(h.count().unwrap(), 2400);
        for (rid, payload) in all {
            assert_eq!(h.get(rid).unwrap(), payload.as_bytes());
        }
    }
}
