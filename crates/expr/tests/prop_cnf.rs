//! Property tests on the CNF conversion and signature machinery:
//!
//! * CNF conversion preserves three-valued semantics for arbitrary
//!   predicate trees over arbitrary tuples;
//! * generalization + constant re-binding is semantics-preserving
//!   (the heart of the expression-signature idea: evaluating the
//!   generalized expression with the extracted constants must equal
//!   evaluating the original).

use proptest::prelude::*;
use tman_common::{Tuple, Value};
use tman_expr::cnf::to_cnf;
use tman_expr::pred::{AtomicPred, CmpOp, Pred};
use tman_expr::scalar::{Env, Scalar};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-20i64..20).prop_map(Value::Int),
        (-20i64..20).prop_map(|i| Value::Float(i as f64 / 2.0)),
        "[ab]{0,3}".prop_map(Value::str),
    ]
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        arb_value().prop_map(Scalar::Const),
        (0usize..3).prop_map(|col| Scalar::Col {
            var: 0,
            col,
            name: format!("t.c{col}")
        }),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let atom = (arb_cmp(), arb_scalar(), arb_scalar())
        .prop_map(|(op, l, r)| Pred::Atom(AtomicPred::cmp(op, l, r)));
    atom.prop_recursive(5, 40, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Pred::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Pred::Or),
            inner.clone().prop_map(|p| Pred::Not(Box::new(p))),
        ]
    })
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (
        prop_oneof![Just(Value::Null), (-20i64..20).prop_map(Value::Int)],
        prop_oneof![
            Just(Value::Null),
            (-20i64..20).prop_map(|i| Value::Float(i as f64 / 2.0))
        ],
        prop_oneof![Just(Value::Null), "[ab]{0,3}".prop_map(Value::str)],
    )
        .prop_map(|(a, b, s)| Tuple::new(vec![a, b, s]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn cnf_preserves_three_valued_semantics(p in arb_pred(), t in arb_tuple()) {
        let Ok(cnf) = to_cnf(&p) else { return Ok(()) }; // blow-up guard hit
        let bind = Some(&t);
        let env = Env { tuples: std::slice::from_ref(&bind), consts: &[] };
        // Comparing strings to numbers can be a bind-time type error in the
        // engine, but the runtime comparator totals the order instead of
        // failing, so evaluation always succeeds here.
        let orig = p.eval(&env).unwrap();
        let normd = cnf.eval(&env).unwrap();
        prop_assert_eq!(orig, normd, "pred: {:?} cnf: {}", p, cnf);
    }

    #[test]
    fn generalization_is_semantics_preserving(p in arb_pred(), t in arb_tuple()) {
        let Ok(cnf) = to_cnf(&p) else { return Ok(()) };
        let (sig, consts) = tman_expr::signature::analyze_selection(
            &cnf,
            tman_common::DataSourceId(1),
            tman_common::EventKind::Insert,
            vec![],
        );
        prop_assert_eq!(sig.num_consts, consts.len());
        let bind = Some(&t);
        let env_orig = Env { tuples: std::slice::from_ref(&bind), consts: &[] };
        let env_gen = Env { tuples: std::slice::from_ref(&bind), consts: &consts };
        prop_assert_eq!(
            cnf.eval(&env_orig).unwrap(),
            sig.generalized.eval(&env_gen).unwrap(),
            "cnf: {} generalized: {}",
            cnf,
            sig.generalized
        );
    }

    #[test]
    fn indexable_split_covers_whole_predicate(p in arb_pred(), t in arb_tuple()) {
        // E = E_I AND E_NI: a tuple satisfies the generalized predicate iff
        // it satisfies the plan's conjuncts AND the residual.
        let Ok(cnf) = to_cnf(&p) else { return Ok(()) };
        let (sig, consts) = tman_expr::signature::analyze_selection(
            &cnf,
            tman_common::DataSourceId(1),
            tman_common::EventKind::Insert,
            vec![],
        );
        let bind = Some(&t);
        let env = Env { tuples: std::slice::from_ref(&bind), consts: &consts };
        let full = sig.generalized.matches(&env).unwrap();
        let residual_ok = match &sig.residual {
            None => true,
            Some(r) => r.matches(&env).unwrap(),
        };
        let plan_ok = plan_matches(&sig.index_plan, &consts, &t);
        prop_assert_eq!(full, residual_ok && plan_ok,
            "plan: {:?} residual: {:?}", sig.index_plan, sig.residual.as_ref().map(|r| r.to_string()));
    }
}

/// Re-evaluate the index plan directly (mirrors what the constant-set
/// organizations do during a probe).
fn plan_matches(plan: &tman_expr::IndexPlan, consts: &[Value], t: &Tuple) -> bool {
    match plan {
        tman_expr::IndexPlan::None => true,
        tman_expr::IndexPlan::Equality { cols, const_slots } => {
            cols.iter().zip(const_slots).all(|(&c, &s)| {
                let v = t.get(c);
                !v.is_null() && !consts[s].is_null() && v == &consts[s]
            })
        }
        tman_expr::IndexPlan::Range { col, lo, hi } => {
            let v = t.get(*col);
            if v.is_null() {
                return false;
            }
            let lo_ok = match lo {
                None => true,
                Some((s, inc)) => {
                    let b = &consts[*s];
                    !b.is_null()
                        && match v.total_cmp(b) {
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Equal => *inc,
                            std::cmp::Ordering::Less => false,
                        }
                }
            };
            let hi_ok = match hi {
                None => true,
                Some((s, inc)) => {
                    let b = &consts[*s];
                    !b.is_null()
                        && match v.total_cmp(b) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => *inc,
                            std::cmp::Ordering::Greater => false,
                        }
                }
            };
            lo_ok && hi_ok
        }
    }
}
