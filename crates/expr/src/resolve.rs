//! Binding parsed expressions against tuple-variable schemas.

use crate::pred::{AtomKind, AtomicPred, CmpOp, Pred};
use crate::scalar::{ArithOp, Func, Scalar};
use tman_common::{DataType, Result, Schema, TmanError, Value};
use tman_lang::ast::{BinaryOp, Expr, Literal, UnaryOp};

/// Scalar type classes used for bind-time checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TypeClass {
    Num,
    Str,
    Unknown,
}

fn class_of_type(t: DataType) -> TypeClass {
    match t {
        DataType::Int | DataType::Float => TypeClass::Num,
        DataType::Char(_) | DataType::Varchar(_) => TypeClass::Str,
    }
}

/// Binding context: the trigger's tuple variables, in `from`-list order.
///
/// For rule *actions*, transition references (`:OLD.x.y`) are allowed and
/// resolve to a second bank of variable slots: variable `i`'s NEW image is
/// slot `i`, its OLD image slot `num_vars + i`. Token processing fills the
/// environment accordingly.
pub struct BindCtx<'a> {
    vars: Vec<(String, &'a Schema)>,
    allow_transitions: bool,
}

impl<'a> BindCtx<'a> {
    /// Context for trigger conditions (`when` clauses): transitions are
    /// rejected.
    pub fn new(vars: Vec<(String, &'a Schema)>) -> BindCtx<'a> {
        BindCtx {
            vars,
            allow_transitions: false,
        }
    }

    /// Context for rule actions: `:NEW`/`:OLD` references resolve.
    pub fn for_actions(vars: Vec<(String, &'a Schema)>) -> BindCtx<'a> {
        BindCtx {
            vars,
            allow_transitions: true,
        }
    }

    /// Number of tuple variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Ordinal of a tuple variable by name.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.vars
            .iter()
            .position(|(n, _)| n.eq_ignore_ascii_case(name))
    }

    fn lookup(&self, qualifier: Option<&str>, column: &str) -> Result<(usize, usize, String)> {
        match qualifier {
            Some(q) => {
                let var = self
                    .var_index(q)
                    .ok_or_else(|| TmanError::Invalid(format!("unknown tuple variable '{q}'")))?;
                let col = self.vars[var]
                    .1
                    .index_of(column)
                    .ok_or_else(|| TmanError::Invalid(format!("no column '{column}' in '{q}'")))?;
                Ok((var, col, format!("{}.{}", self.vars[var].0, column)))
            }
            None => {
                // Unqualified: must be unambiguous across all variables.
                let mut hit = None;
                for (var, (name, schema)) in self.vars.iter().enumerate() {
                    if let Some(col) = schema.index_of(column) {
                        if hit.is_some() {
                            return Err(TmanError::Invalid(format!("ambiguous column '{column}'")));
                        }
                        hit = Some((var, col, format!("{name}.{column}")));
                    }
                }
                hit.ok_or_else(|| TmanError::Invalid(format!("unknown column '{column}'")))
            }
        }
    }

    fn class_of(&self, s: &Scalar) -> TypeClass {
        match s {
            Scalar::Const(Value::Int(_)) | Scalar::Const(Value::Float(_)) => TypeClass::Num,
            Scalar::Const(Value::Str(_)) => TypeClass::Str,
            Scalar::Const(Value::Null) | Scalar::Placeholder(_) => TypeClass::Unknown,
            Scalar::Col { var, col, .. } => {
                // OLD-image slots mirror the NEW-image schemas.
                let v = *var % self.vars.len().max(1);
                self.vars
                    .get(v)
                    .map(|(_, s)| class_of_type(s.column(*col).ty))
                    .unwrap_or(TypeClass::Unknown)
            }
            Scalar::Neg(_) | Scalar::Arith { .. } => TypeClass::Num,
            Scalar::Call { func, .. } => match func {
                Func::Lower | Func::Upper => TypeClass::Str,
                _ => TypeClass::Num,
            },
        }
    }

    /// Resolve an expression expected to be a scalar.
    pub fn scalar(&self, e: &Expr) -> Result<Scalar> {
        match e {
            Expr::Literal(l) => Ok(Scalar::Const(match l {
                Literal::Int(i) => Value::Int(*i),
                Literal::Float(f) => Value::Float(*f),
                Literal::Str(s) => Value::Str(s.clone()),
                Literal::Null => Value::Null,
            })),
            Expr::Column { qualifier, column } => {
                let (var, col, name) = self.lookup(qualifier.as_deref(), column)?;
                Ok(Scalar::Col { var, col, name })
            }
            Expr::Transition {
                new,
                source,
                column,
            } => {
                if !self.allow_transitions {
                    return Err(TmanError::Invalid(
                        ":NEW/:OLD references are only allowed in rule actions".into(),
                    ));
                }
                let (var, col, name) = self.lookup(Some(source), column)?;
                let slot = if *new { var } else { self.vars.len() + var };
                Ok(Scalar::Col {
                    var: slot,
                    col,
                    name: format!(":{}.{name}", if *new { "NEW" } else { "OLD" }),
                })
            }
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => {
                let inner = self.scalar(expr)?;
                if self.class_of(&inner) == TypeClass::Str {
                    return Err(TmanError::Type("cannot negate a string".into()));
                }
                Ok(Scalar::Neg(Box::new(inner)))
            }
            Expr::Unary {
                op: UnaryOp::Not, ..
            } => Err(TmanError::Type("NOT used in scalar position".into())),
            Expr::Binary { op, left, right } => {
                let aop = match op {
                    BinaryOp::Add => ArithOp::Add,
                    BinaryOp::Sub => ArithOp::Sub,
                    BinaryOp::Mul => ArithOp::Mul,
                    BinaryOp::Div => ArithOp::Div,
                    _ => {
                        return Err(TmanError::Type(format!(
                            "boolean operator '{}' in scalar position",
                            op.symbol()
                        )))
                    }
                };
                let l = self.scalar(left)?;
                let r = self.scalar(right)?;
                for s in [&l, &r] {
                    if self.class_of(s) == TypeClass::Str {
                        return Err(TmanError::Type(format!(
                            "arithmetic on string operand '{s}'"
                        )));
                    }
                }
                Ok(Scalar::Arith {
                    op: aop,
                    left: Box::new(l),
                    right: Box::new(r),
                })
            }
            Expr::Call { name, args } => {
                if name.eq_ignore_ascii_case("is_null") {
                    return Err(TmanError::Type("IS NULL used in scalar position".into()));
                }
                let func = Func::by_name(name)
                    .ok_or_else(|| TmanError::Invalid(format!("unknown function '{name}'")))?;
                if args.len() != func.arity() {
                    return Err(TmanError::Type(format!(
                        "{name} takes {} argument(s), got {}",
                        func.arity(),
                        args.len()
                    )));
                }
                Ok(Scalar::Call {
                    func,
                    args: args.iter().map(|a| self.scalar(a)).collect::<Result<_>>()?,
                })
            }
        }
    }

    /// Resolve an expression expected to be a predicate.
    pub fn pred(&self, e: &Expr) -> Result<Pred> {
        match e {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => Ok(Pred::And(vec![self.pred(left)?, self.pred(right)?])),
            Expr::Binary {
                op: BinaryOp::Or,
                left,
                right,
            } => Ok(Pred::Or(vec![self.pred(left)?, self.pred(right)?])),
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => Ok(Pred::Not(Box::new(self.pred(expr)?))),
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let cmp = match op {
                    BinaryOp::Eq => CmpOp::Eq,
                    BinaryOp::Ne => CmpOp::Ne,
                    BinaryOp::Lt => CmpOp::Lt,
                    BinaryOp::Le => CmpOp::Le,
                    BinaryOp::Gt => CmpOp::Gt,
                    BinaryOp::Ge => CmpOp::Ge,
                    BinaryOp::Like => CmpOp::Like,
                    _ => unreachable!(),
                };
                let l = self.scalar(left)?;
                let r = self.scalar(right)?;
                let (lc, rc) = (self.class_of(&l), self.class_of(&r));
                if lc != TypeClass::Unknown && rc != TypeClass::Unknown && lc != rc {
                    return Err(TmanError::Type(format!(
                        "comparing incompatible types: {l} {} {r}",
                        cmp.symbol()
                    )));
                }
                if cmp == CmpOp::Like && (lc == TypeClass::Num || rc == TypeClass::Num) {
                    return Err(TmanError::Type("LIKE requires string operands".into()));
                }
                Ok(Pred::Atom(AtomicPred::cmp(cmp, l, r)))
            }
            Expr::Call { name, args } if name.eq_ignore_ascii_case("is_null") => {
                if args.len() != 1 {
                    return Err(TmanError::Type("is_null takes one argument".into()));
                }
                Ok(Pred::Atom(AtomicPred::pos(AtomKind::IsNull(
                    self.scalar(&args[0])?,
                ))))
            }
            Expr::Literal(Literal::Int(i)) => Ok(Pred::truth(*i != 0)),
            _ => Err(TmanError::Type(
                "expected a boolean condition, found scalar expression".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Env;
    use tman_common::{DataType, Tuple};
    use tman_lang::parse_expression;

    fn emp() -> Schema {
        Schema::from_pairs(&[
            ("name", DataType::Varchar(32)),
            ("salary", DataType::Float),
            ("dept", DataType::Int),
        ])
    }

    fn eval_on(cond: &str, row: Vec<Value>) -> Option<bool> {
        let schema = emp();
        let ctx = BindCtx::new(vec![("emp".into(), &schema)]);
        let p = ctx.pred(&parse_expression(cond).unwrap()).unwrap();
        let t = Tuple::new(row);
        let bind = Some(&t);
        let env = Env {
            tuples: std::slice::from_ref(&bind),
            consts: &[],
        };
        p.eval(&env).unwrap()
    }

    #[test]
    fn paper_condition_salary_over_80000() {
        assert_eq!(
            eval_on(
                "emp.salary > 80000",
                vec![Value::str("Bob"), Value::Float(90000.0), Value::Int(1)]
            ),
            Some(true)
        );
        assert_eq!(
            eval_on(
                "emp.salary > 80000",
                vec![Value::str("Bob"), Value::Float(70000.0), Value::Int(1)]
            ),
            Some(false)
        );
    }

    #[test]
    fn unqualified_columns_resolve_when_unambiguous() {
        assert_eq!(
            eval_on(
                "name = 'Bob' and dept = 7",
                vec![Value::str("Bob"), Value::Float(1.0), Value::Int(7)]
            ),
            Some(true)
        );
    }

    #[test]
    fn type_errors_at_bind_time() {
        let schema = emp();
        let ctx = BindCtx::new(vec![("emp".into(), &schema)]);
        for bad in [
            "emp.salary = 'abc'",
            "emp.name > 5",
            "emp.name + 1 = 2",
            "emp.salary like 'x%'",
            "-emp.name = 3",
        ] {
            assert!(
                ctx.pred(&parse_expression(bad).unwrap()).is_err(),
                "expected bind error for {bad}"
            );
        }
    }

    #[test]
    fn unknown_names_rejected() {
        let schema = emp();
        let ctx = BindCtx::new(vec![("emp".into(), &schema)]);
        assert!(ctx
            .pred(&parse_expression("emp.bogus = 1").unwrap())
            .is_err());
        assert!(ctx.pred(&parse_expression("dept2.x = 1").unwrap()).is_err());
        assert!(ctx
            .scalar(&parse_expression("frobnicate(1)").unwrap())
            .is_err());
    }

    #[test]
    fn transitions_only_in_actions() {
        let schema = emp();
        let cond_ctx = BindCtx::new(vec![("emp".into(), &schema)]);
        let e = parse_expression(":NEW.emp.salary").unwrap();
        assert!(cond_ctx.scalar(&e).is_err());

        let act_ctx = BindCtx::for_actions(vec![("emp".into(), &schema)]);
        let s = act_ctx.scalar(&e).unwrap();
        assert_eq!(s.as_column(), Some((0, 1)));
        let s_old = act_ctx
            .scalar(&parse_expression(":OLD.emp.salary").unwrap())
            .unwrap();
        assert_eq!(s_old.as_column(), Some((1, 1))); // num_vars + 0
    }

    #[test]
    fn multi_variable_join_condition() {
        let sp = Schema::from_pairs(&[("spno", DataType::Int), ("name", DataType::Varchar(20))]);
        let rep = Schema::from_pairs(&[("spno", DataType::Int), ("nno", DataType::Int)]);
        let ctx = BindCtx::new(vec![("s".into(), &sp), ("r".into(), &rep)]);
        let p = ctx
            .pred(&parse_expression("s.name = 'Iris' and s.spno = r.spno").unwrap())
            .unwrap();
        assert_eq!(p.var_mask(), 0b11);
        let ts = Tuple::new(vec![Value::Int(3), Value::str("Iris")]);
        let tr = Tuple::new(vec![Value::Int(3), Value::Int(9)]);
        let binds = [Some(&ts), Some(&tr)];
        let env = Env {
            tuples: &binds,
            consts: &[],
        };
        assert_eq!(p.eval(&env).unwrap(), Some(true));
    }

    #[test]
    fn is_null_resolves() {
        assert_eq!(
            eval_on(
                "emp.name is null",
                vec![Value::Null, Value::Float(0.0), Value::Int(0)]
            ),
            Some(true)
        );
        assert_eq!(
            eval_on(
                "emp.name is not null",
                vec![Value::Null, Value::Float(0.0), Value::Int(0)]
            ),
            Some(false)
        );
    }
}
