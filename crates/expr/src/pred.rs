//! Predicates with SQL three-valued logic.
//!
//! The `when` clause is a boolean expression over scalars. Evaluation
//! returns `Option<bool>` — `None` is SQL *unknown* — and a predicate
//! "matches" a token only when it evaluates to `Some(true)`.

use crate::scalar::{Env, Scalar};
use std::cmp::Ordering;
use std::fmt;
use tman_common::{Result, TmanError, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `LIKE` (pattern with `%` / `_`)
    Like,
}

impl CmpOp {
    /// The operator such that `a op b == b.flip(op) a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Like => CmpOp::Like, // not flippable; callers must not flip LIKE
        }
    }

    /// Logical negation (`NOT (a op b)` ⇒ `a op.negate() b`).
    pub fn negate(self) -> Option<CmpOp> {
        match self {
            CmpOp::Eq => Some(CmpOp::Ne),
            CmpOp::Ne => Some(CmpOp::Eq),
            CmpOp::Lt => Some(CmpOp::Ge),
            CmpOp::Le => Some(CmpOp::Gt),
            CmpOp::Gt => Some(CmpOp::Le),
            CmpOp::Ge => Some(CmpOp::Lt),
            CmpOp::Like => None, // represented with an explicit negation flag
        }
    }

    /// Symbol for signature descriptions.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Like => "like",
        }
    }
}

/// The kind of an atomic predicate (no boolean operators inside, per §5's
/// definition of a clause).
#[derive(Debug, Clone, PartialEq)]
pub enum AtomKind {
    /// `left op right`.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left scalar.
        left: Scalar,
        /// Right scalar.
        right: Scalar,
    },
    /// `expr IS NULL`.
    IsNull(Scalar),
    /// Constant truth value (from folding).
    Const(bool),
}

/// An atomic predicate, possibly negated (§5 allows NOT on clauses).
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicPred {
    /// Negation flag (only needed for `NOT LIKE` / `IS NOT NULL`; ordered
    /// comparisons fold negation into the operator).
    pub negated: bool,
    /// The atom.
    pub kind: AtomKind,
}

impl AtomicPred {
    /// Positive atom.
    pub fn pos(kind: AtomKind) -> AtomicPred {
        AtomicPred {
            negated: false,
            kind,
        }
    }

    /// Comparison helper.
    pub fn cmp(op: CmpOp, left: Scalar, right: Scalar) -> AtomicPred {
        AtomicPred::pos(AtomKind::Cmp { op, left, right })
    }

    /// Three-valued evaluation.
    pub fn eval(&self, env: &Env<'_>) -> Result<Option<bool>> {
        let base = match &self.kind {
            AtomKind::Const(b) => Some(*b),
            AtomKind::IsNull(s) => Some(s.eval(env)?.is_null()),
            AtomKind::Cmp { op, left, right } => {
                let l = left.eval(env)?;
                let r = right.eval(env)?;
                if l.is_null() || r.is_null() {
                    None
                } else {
                    Some(compare(*op, &l, &r)?)
                }
            }
        };
        Ok(match (base, self.negated) {
            (Some(b), true) => Some(!b),
            (b, _) => b,
        })
    }

    /// Variables referenced.
    pub fn var_mask(&self) -> u64 {
        match &self.kind {
            AtomKind::Const(_) => 0,
            AtomKind::IsNull(s) => s.var_mask(),
            AtomKind::Cmp { left, right, .. } => left.var_mask() | right.var_mask(),
        }
    }

    /// Replace constants with placeholders (see [`Scalar::generalize`]).
    pub fn generalize(&self, consts: &mut Vec<Value>) -> AtomicPred {
        let kind = match &self.kind {
            AtomKind::Const(b) => AtomKind::Const(*b),
            AtomKind::IsNull(s) => AtomKind::IsNull(s.generalize(consts)),
            AtomKind::Cmp { op, left, right } => AtomKind::Cmp {
                op: *op,
                left: left.generalize(consts),
                right: right.generalize(consts),
            },
        };
        AtomicPred {
            negated: self.negated,
            kind,
        }
    }
}

impl fmt::Display for AtomicPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "not ")?;
        }
        match &self.kind {
            AtomKind::Const(b) => write!(f, "{b}"),
            AtomKind::IsNull(s) => write!(f, "{s} is null"),
            AtomKind::Cmp { op, left, right } => {
                write!(f, "{left} {} {right}", op.symbol())
            }
        }
    }
}

/// A resolved boolean expression tree (pre-CNF).
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// An atomic predicate.
    Atom(AtomicPred),
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Constant truth.
    pub fn truth(b: bool) -> Pred {
        Pred::Atom(AtomicPred::pos(AtomKind::Const(b)))
    }

    /// Three-valued evaluation (Kleene logic: AND short-circuits on false,
    /// OR on true, unknown otherwise propagates).
    pub fn eval(&self, env: &Env<'_>) -> Result<Option<bool>> {
        match self {
            Pred::Atom(a) => a.eval(env),
            Pred::Not(p) => Ok(p.eval(env)?.map(|b| !b)),
            Pred::And(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval(env)? {
                        Some(false) => return Ok(Some(false)),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                Ok(if unknown { None } else { Some(true) })
            }
            Pred::Or(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval(env)? {
                        Some(true) => return Ok(Some(true)),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                Ok(if unknown { None } else { Some(false) })
            }
        }
    }

    /// Does the predicate hold (`Some(true)`)?
    pub fn matches(&self, env: &Env<'_>) -> Result<bool> {
        Ok(self.eval(env)? == Some(true))
    }

    /// Variables referenced.
    pub fn var_mask(&self) -> u64 {
        match self {
            Pred::Atom(a) => a.var_mask(),
            Pred::Not(p) => p.var_mask(),
            Pred::And(ps) | Pred::Or(ps) => ps.iter().map(Pred::var_mask).fold(0, |a, b| a | b),
        }
    }
}

/// Evaluate one comparison on non-null values.
pub fn compare(op: CmpOp, l: &Value, r: &Value) -> Result<bool> {
    if op == CmpOp::Like {
        let (Value::Str(s), Value::Str(p)) = (l, r) else {
            return Err(TmanError::Type(format!("LIKE on non-strings {l}, {r}")));
        };
        return Ok(like_match(s, p));
    }
    // Comparisons across type classes (number vs string) are type errors,
    // matching the engine's strict checking at bind time; at run time we
    // fall back to total ordering so corrupt data cannot panic.
    let ord = l.total_cmp(r);
    Ok(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
        CmpOp::Like => unreachable!(),
    })
}

/// SQL LIKE: `%` matches any run (including empty), `_` any single char.
/// Iterative two-pointer algorithm with backtracking to the last `%`.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pi after %, si at %)
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if let Some((sp, ss)) = star {
            // Backtrack: let the last % absorb one more char.
            pi = sp;
            si = ss + 1;
            star = Some((sp, ss + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tman_common::Tuple;

    fn atom(op: CmpOp, l: Value, r: Value) -> Pred {
        Pred::Atom(AtomicPred::cmp(op, Scalar::Const(l), Scalar::Const(r)))
    }

    #[test]
    fn comparisons() {
        let env = Env::default();
        assert_eq!(
            atom(CmpOp::Eq, Value::Int(1), Value::Float(1.0))
                .eval(&env)
                .unwrap(),
            Some(true)
        );
        assert_eq!(
            atom(CmpOp::Lt, Value::str("abc"), Value::str("abd"))
                .eval(&env)
                .unwrap(),
            Some(true)
        );
        assert_eq!(
            atom(CmpOp::Ge, Value::Int(5), Value::Int(9))
                .eval(&env)
                .unwrap(),
            Some(false)
        );
    }

    #[test]
    fn null_gives_unknown_and_kleene_logic() {
        let env = Env::default();
        let unknown = atom(CmpOp::Eq, Value::Null, Value::Int(1));
        assert_eq!(unknown.eval(&env).unwrap(), None);
        // false AND unknown = false
        let p = Pred::And(vec![Pred::truth(false), unknown.clone()]);
        assert_eq!(p.eval(&env).unwrap(), Some(false));
        // true AND unknown = unknown
        let p = Pred::And(vec![Pred::truth(true), unknown.clone()]);
        assert_eq!(p.eval(&env).unwrap(), None);
        // true OR unknown = true
        let p = Pred::Or(vec![Pred::truth(true), unknown.clone()]);
        assert_eq!(p.eval(&env).unwrap(), Some(true));
        // false OR unknown = unknown
        let p = Pred::Or(vec![Pred::truth(false), unknown.clone()]);
        assert_eq!(p.eval(&env).unwrap(), None);
        // NOT unknown = unknown; and matches() treats it as non-match.
        let p = Pred::Not(Box::new(unknown));
        assert_eq!(p.eval(&env).unwrap(), None);
        assert!(!p.matches(&env).unwrap());
    }

    #[test]
    fn is_null_atom() {
        let t = Tuple::new(vec![Value::Null, Value::Int(3)]);
        let bind = Some(&t);
        let env = Env {
            tuples: std::slice::from_ref(&bind),
            consts: &[],
        };
        let isnull = |c: usize| {
            Pred::Atom(AtomicPred::pos(AtomKind::IsNull(Scalar::Col {
                var: 0,
                col: c,
                name: format!("t.c{c}"),
            })))
        };
        assert_eq!(isnull(0).eval(&env).unwrap(), Some(true));
        assert_eq!(isnull(1).eval(&env).unwrap(), Some(false));
        // IS NOT NULL via negation flag.
        let mut a = AtomicPred::pos(AtomKind::IsNull(Scalar::Col {
            var: 0,
            col: 1,
            name: "t.c1".into(),
        }));
        a.negated = true;
        assert_eq!(a.eval(&env).unwrap(), Some(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("Iris", "Ir%"));
        assert!(like_match("Iris", "%s"));
        assert!(like_match("Iris", "I_i%"));
        assert!(like_match("Iris", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(!like_match("Iris", "ir%")); // case-sensitive
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("mississippi", "%iss%ppi"));
        assert!(!like_match("mississippi", "%issx%"));
        assert!(like_match("abc", "a%%c"));
        assert!(!like_match("ab", "a_c"));
    }

    #[test]
    fn like_type_error() {
        let env = Env::default();
        assert!(atom(CmpOp::Like, Value::Int(1), Value::str("%"))
            .eval(&env)
            .is_err());
    }

    #[test]
    fn operator_algebra() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), Some(CmpOp::Gt));
        assert_eq!(CmpOp::Like.negate(), None);
    }

    #[test]
    fn display_forms() {
        let a = AtomicPred::cmp(
            CmpOp::Gt,
            Scalar::Col {
                var: 0,
                col: 1,
                name: "emp.salary".into(),
            },
            Scalar::Placeholder(0),
        );
        assert_eq!(a.to_string(), "emp.salary > CONSTANT1");
    }
}
