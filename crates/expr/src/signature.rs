//! Expression signatures (§5).
//!
//! "An expression signature for a general selection or join predicate
//! expression is a triple consisting of a data source ID, an operation
//! code, and a generalized expression" where every constant is replaced by
//! a numbered placeholder. A signature defines an equivalence class of all
//! instantiations with different constants.
//!
//! [`analyze_selection`] performs the per-predicate work of §5.1 step 5:
//! generalization, the `E = E_I AND E_NI` indexable/residual split, and the
//! most-selective-conjunct choice of \[Hans90\].

use crate::cnf::{Cnf, Conjunct};
use crate::pred::{AtomKind, AtomicPred, CmpOp};
use crate::scalar::Scalar;
use std::fmt;
use tman_common::{DataSourceId, EventKind, Value};

/// Upper bound on the number of disjuncts tagged execution will split a
/// predicate into. Beyond this, multi-set membership stops paying for
/// itself (every branch is a physical entry the governor must account) and
/// the residual scan is kept instead.
pub const MAX_TAGGED_DISJUNCTS: usize = 8;

/// Identity of a signature: `(data source, operation code, generalized
/// expression)`. The generalized expression is identified by its canonical
/// description string (also stored in the catalog as `signatureDesc`), so
/// structural equality is string equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignatureKey {
    /// The data source the predicate applies to.
    pub data_src: DataSourceId,
    /// Operation code: insert / delete / update / insertOrUpdate, plus the
    /// update column list when present (part of the event condition).
    pub event: EventKind,
    /// Canonical display of the generalized expression.
    pub desc: String,
}

impl fmt::Display for SignatureKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[src={} on {}: {}]",
            self.data_src.raw(),
            self.event,
            self.desc
        )
    }
}

/// How the indexable part `E_I` of a signature's predicates can be probed.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexPlan {
    /// `attr1 = CONSTANT_i1 AND ... AND attrK = CONSTANT_iK`: probe with
    /// the token's values of `cols`, matching rows whose constants at
    /// `const_slots` equal them. This is the composite-key clustered-index
    /// form of §5.1.
    Equality {
        /// Column ordinals of the data source, in key order.
        cols: Vec<usize>,
        /// Placeholder slots (into the constant vector) paired with `cols`.
        const_slots: Vec<usize>,
    },
    /// A (possibly one-sided) range on a single column:
    /// `lo <[=] attr <[=] hi` where lo/hi are constants. Probed with an
    /// interval structure (interval skip list per \[Hans96b\]).
    Range {
        /// Column ordinal being ranged over.
        col: usize,
        /// Lower bound: (placeholder slot, inclusive).
        lo: Option<(usize, bool)>,
        /// Upper bound: (placeholder slot, inclusive).
        hi: Option<(usize, bool)>,
    },
    /// No indexable conjunct: every expression in the equivalence class is
    /// evaluated against the token (still grouped under the signature so
    /// the work is shared structurally).
    None,
}

impl IndexPlan {
    /// Number of constants consumed by the plan.
    pub fn num_plan_consts(&self) -> usize {
        match self {
            IndexPlan::Equality { const_slots, .. } => const_slots.len(),
            IndexPlan::Range { lo, hi, .. } => lo.is_some() as usize + hi.is_some() as usize,
            IndexPlan::None => 0,
        }
    }
}

/// The analysis result for one selection predicate occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionSignature {
    /// Signature identity.
    pub key: SignatureKey,
    /// The full generalized expression (placeholders everywhere).
    pub generalized: Cnf,
    /// Number of placeholders (`m` in the paper).
    pub num_consts: usize,
    /// The indexable part `E_I` as a probe plan.
    pub index_plan: IndexPlan,
    /// The non-indexable part `E_NI` (conjuncts not covered by the plan),
    /// still referring to the shared placeholder numbering. `None` when the
    /// entire predicate is indexable ("restOfPredicate is NULL").
    pub residual: Option<Cnf>,
    /// Column ordinals for `update(col, ...)` events (empty = any column).
    pub update_cols: Vec<usize>,
}

/// Estimated selectivity of a conjunct — lower is more selective. The
/// ranking (equality ≪ two-sided range < one-sided range < LIKE < other)
/// follows the usual System-R style heuristics; the paper's \[Hans90\]
/// technique needs only the *ordering*, not calibrated values.
pub fn conjunct_selectivity(c: &Conjunct) -> f64 {
    // A disjunction is as selective as the sum of its branches.
    c.atoms
        .iter()
        .map(|a| {
            if a.negated {
                return 0.9;
            }
            match &a.kind {
                AtomKind::Const(_) => 1.0,
                AtomKind::IsNull(_) => 0.1,
                AtomKind::Cmp { op, left, right } => {
                    let has_const_side = is_col_vs_const(left, right).is_some();
                    match (op, has_const_side) {
                        (CmpOp::Eq, true) => 0.01,
                        (CmpOp::Eq, false) => 0.05,
                        (CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge, _) => 0.3,
                        (CmpOp::Like, _) => 0.25,
                        (CmpOp::Ne, _) => 0.9,
                    }
                }
            }
        })
        .sum::<f64>()
        .min(1.0)
}

/// If the atom compares a bare column of variable 0 against a placeholder
/// or constant, return `(col, placeholder_slot, op_with_col_on_left)`.
fn atom_col_vs_slot(op: CmpOp, left: &Scalar, right: &Scalar) -> Option<(usize, usize, CmpOp)> {
    if op == CmpOp::Like {
        return None; // LIKE is not index-probable here
    }
    if let (Some((0, col)), Some(slot)) = (left.as_column(), right.as_placeholder()) {
        return Some((col, slot, op));
    }
    if let (Some(slot), Some((0, col))) = (left.as_placeholder(), right.as_column()) {
        return Some((col, slot, op.flip()));
    }
    None
}

fn is_col_vs_const(left: &Scalar, right: &Scalar) -> Option<()> {
    let konst = |s: &Scalar| matches!(s, Scalar::Const(_) | Scalar::Placeholder(_));
    match (left.as_column(), right.as_column()) {
        (Some(_), None) if konst(right) => Some(()),
        (None, Some(_)) if konst(left) => Some(()),
        _ => None,
    }
}

/// Classify one generalized conjunct for indexability.
enum ConjunctClass {
    /// `col = CONSTANT_slot`
    Eq {
        col: usize,
        slot: usize,
    },
    /// `col op CONSTANT_slot` with an ordered operator.
    Range {
        col: usize,
        slot: usize,
        op: CmpOp,
    },
    Other,
}

fn classify(c: &Conjunct) -> ConjunctClass {
    // Only single-clause (no OR), non-negated conjuncts are indexable,
    // matching the paper's "most selection predicates will not contain ORs".
    if c.atoms.len() != 1 || c.atoms[0].negated {
        return ConjunctClass::Other;
    }
    let AtomKind::Cmp { op, left, right } = &c.atoms[0].kind else {
        return ConjunctClass::Other;
    };
    match atom_col_vs_slot(*op, left, right) {
        Some((col, slot, CmpOp::Eq)) => ConjunctClass::Eq { col, slot },
        Some((col, slot, op @ (CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge))) => {
            ConjunctClass::Range { col, slot, op }
        }
        _ => ConjunctClass::Other,
    }
}

/// Is this atom individually index-selectable — a non-negated ordered or
/// equality comparison between a bare column of variable 0 and a constant?
/// Exactly the atoms [`classify`] would accept as a standalone conjunct
/// after generalization (the constant becomes a placeholder).
fn atom_selectable(a: &AtomicPred) -> bool {
    if a.negated {
        return false;
    }
    let AtomKind::Cmp { op, left, right } = &a.kind else {
        return false;
    };
    if matches!(op, CmpOp::Like | CmpOp::Ne) {
        return false;
    }
    let is_const = |s: &Scalar| matches!(s, Scalar::Const(_));
    (matches!(left.as_column(), Some((0, _))) && is_const(right))
        || (is_const(left) && matches!(right.as_column(), Some((0, _))))
}

/// Tagged-execution decomposition of a disjunctive selection predicate
/// (Kim & Madden, "Optimizing Disjunctive Queries with Tagged Execution").
///
/// If the CNF contains a conjunct `(a1 OR ... OR an)` whose atoms are each
/// individually index-selectable (column-vs-constant equality or range),
/// rewrite `(a1 ∨ ... ∨ an) ∧ R` as the n branch predicates `ai ∧ R` — an
/// equivalence because conjunction distributes over disjunction. Each
/// branch is then analyzable into a signature with a real index plan keyed
/// by `ai`, so the trigger enters one constant set per disjunct instead of
/// falling into the residual linear scan. Branches can overlap on a token
/// (`x = 1 or x < 5` both match `x = 1`), which is why every branch entry
/// must carry a shared *tag* the engine dedupes per token.
///
/// Returns the branch CNFs (original conjunct order preserved, with the
/// decomposed conjunct replaced in place by the single atom), or `None`
/// when no conjunct qualifies: the predicate has no multi-atom disjunction,
/// the best candidate has a non-selectable atom (negation, `LIKE`, `<>`,
/// arithmetic on the column), or it exceeds [`MAX_TAGGED_DISJUNCTS`].
/// Only the *first* qualifying conjunct is decomposed — splitting several
/// would multiply entries combinatorially; the remaining disjunctions stay
/// residual inside every branch, which is still correct.
///
/// Operates on the concrete (pre-generalization) selection so the engine
/// can feed each branch straight back through [`analyze_selection`]; each
/// branch renumbers its own placeholders independently.
pub fn decompose_disjunction(selection: &Cnf) -> Option<Vec<Cnf>> {
    let target = selection.conjuncts.iter().position(|c| {
        c.atoms.len() >= 2
            && c.atoms.len() <= MAX_TAGGED_DISJUNCTS
            && c.atoms.iter().all(atom_selectable)
    })?;
    let mut branches: Vec<Cnf> = Vec::with_capacity(selection.conjuncts[target].atoms.len());
    let mut seen: Vec<String> = Vec::new();
    for atom in &selection.conjuncts[target].atoms {
        let mut conjuncts = selection.conjuncts.clone();
        conjuncts[target] = Conjunct {
            atoms: vec![atom.clone()],
        };
        let branch = Cnf { conjuncts };
        // Duplicate atoms (`x = 1 or x = 1`) would register two identical
        // entries under one tag — harmless under dedup, but wasteful.
        let desc = branch.to_string();
        if seen.contains(&desc) {
            continue;
        }
        seen.push(desc);
        branches.push(branch);
    }
    Some(branches)
}

/// Analyze one selection predicate (already canonicalized onto variable 0;
/// see [`crate::cnf::remap_var`]). Returns the signature and the extracted
/// constant vector (the row for the signature's constant table).
pub fn analyze_selection(
    selection: &Cnf,
    data_src: DataSourceId,
    event: EventKind,
    update_cols: Vec<usize>,
) -> (SelectionSignature, Vec<Value>) {
    let mut consts = Vec::new();
    let generalized = selection.generalize(&mut consts);
    let desc = generalized.to_string();
    let key = SignatureKey {
        data_src,
        event,
        desc,
    };

    // Classify conjuncts.
    let mut eqs: Vec<(usize, usize, usize)> = Vec::new(); // (col, slot, conjunct idx)
    let mut ranges: Vec<(usize, usize, CmpOp, usize)> = Vec::new();
    for (i, c) in generalized.conjuncts.iter().enumerate() {
        match classify(c) {
            ConjunctClass::Eq { col, slot } => eqs.push((col, slot, i)),
            ConjunctClass::Range { col, slot, op } => ranges.push((col, slot, op, i)),
            ConjunctClass::Other => {}
        }
    }

    let mut covered: Vec<usize> = Vec::new();
    let index_plan = if !eqs.is_empty() {
        // All equality conjuncts form the composite key, ordered by column
        // ordinal for determinism. Duplicate columns (x = 1 AND x = 2)
        // keep only the first occurrence; the rest stay residual.
        eqs.sort_by_key(|&(col, _, idx)| (col, idx));
        let mut cols = Vec::new();
        let mut slots = Vec::new();
        for (col, slot, idx) in eqs {
            if cols.last() == Some(&col) {
                continue;
            }
            cols.push(col);
            slots.push(slot);
            covered.push(idx);
        }
        IndexPlan::Equality {
            cols,
            const_slots: slots,
        }
    } else if !ranges.is_empty() {
        // Pick the column with the most range conjuncts (two-sided ranges
        // are more selective), then lowest ordinal for determinism.
        let mut best_col = ranges[0].0;
        let mut best_count = 0usize;
        for &(col, ..) in &ranges {
            let n = ranges.iter().filter(|r| r.0 == col).count();
            if n > best_count || (n == best_count && col < best_col) {
                best_col = col;
                best_count = n;
            }
        }
        let mut lo: Option<(usize, bool)> = None;
        let mut hi: Option<(usize, bool)> = None;
        for &(col, slot, op, idx) in &ranges {
            if col != best_col {
                continue;
            }
            match op {
                CmpOp::Gt if lo.is_none() => {
                    lo = Some((slot, false));
                    covered.push(idx);
                }
                CmpOp::Ge if lo.is_none() => {
                    lo = Some((slot, true));
                    covered.push(idx);
                }
                CmpOp::Lt if hi.is_none() => {
                    hi = Some((slot, false));
                    covered.push(idx);
                }
                CmpOp::Le if hi.is_none() => {
                    hi = Some((slot, true));
                    covered.push(idx);
                }
                _ => {}
            }
        }
        IndexPlan::Range {
            col: best_col,
            lo,
            hi,
        }
    } else {
        IndexPlan::None
    };

    // Residual = conjuncts not covered by the plan.
    let residual_conjuncts: Vec<Conjunct> = generalized
        .conjuncts
        .iter()
        .enumerate()
        .filter(|(i, _)| !covered.contains(i))
        .map(|(_, c)| c.clone())
        .collect();
    let residual = if residual_conjuncts.is_empty() {
        None
    } else {
        Some(Cnf {
            conjuncts: residual_conjuncts,
        })
    };

    (
        SelectionSignature {
            key,
            num_consts: consts.len(),
            generalized,
            index_plan,
            residual,
            update_cols,
        },
        consts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::to_cnf;
    use crate::resolve::BindCtx;
    use tman_common::{DataType, Schema};
    use tman_lang::parse_expression;

    fn emp() -> Schema {
        Schema::from_pairs(&[
            ("name", DataType::Varchar(32)),
            ("salary", DataType::Float),
            ("dept", DataType::Int),
        ])
    }

    fn analyze(cond: &str) -> (SelectionSignature, Vec<Value>) {
        let schema = emp();
        let ctx = BindCtx::new(vec![("emp".into(), &schema)]);
        let cnf = to_cnf(&ctx.pred(&parse_expression(cond).unwrap()).unwrap()).unwrap();
        analyze_selection(&cnf, DataSourceId(1), EventKind::Insert, vec![])
    }

    #[test]
    fn paper_figure2_signature() {
        // "on insert to emp when emp.salary > 80000" and the same with
        // 50000 have the same signature but different constants (§5).
        let (sig_a, consts_a) = analyze("emp.salary > 80000");
        let (sig_b, consts_b) = analyze("emp.salary > 50000");
        assert_eq!(sig_a.key, sig_b.key);
        assert_eq!(sig_a.key.desc, "emp.salary > CONSTANT1");
        assert_eq!(consts_a, vec![Value::Int(80000)]);
        assert_eq!(consts_b, vec![Value::Int(50000)]);
        // And a structurally different predicate has a different signature.
        let (sig_c, _) = analyze("emp.salary >= 80000");
        assert_ne!(sig_a.key, sig_c.key);
    }

    #[test]
    fn event_is_part_of_the_key() {
        let schema = emp();
        let ctx = BindCtx::new(vec![("emp".into(), &schema)]);
        let cnf = to_cnf(
            &ctx.pred(&parse_expression("emp.dept = 5").unwrap())
                .unwrap(),
        )
        .unwrap();
        let (a, _) = analyze_selection(&cnf, DataSourceId(1), EventKind::Insert, vec![]);
        let (b, _) = analyze_selection(&cnf, DataSourceId(1), EventKind::InsertOrUpdate, vec![]);
        let (c, _) = analyze_selection(&cnf, DataSourceId(2), EventKind::Insert, vec![]);
        assert_ne!(a.key, b.key);
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn equality_plan_with_composite_key() {
        let (sig, consts) = analyze("emp.dept = 7 and emp.name = 'Bob'");
        let IndexPlan::Equality { cols, const_slots } = &sig.index_plan else {
            panic!("expected equality plan, got {:?}", sig.index_plan)
        };
        // Ordered by column ordinal: name(0), dept(2).
        assert_eq!(cols, &vec![0, 2]);
        // Constants numbered left to right in the original expression:
        // 7 first, then 'Bob'; slots follow the column order.
        assert_eq!(consts, vec![Value::Int(7), Value::str("Bob")]);
        assert_eq!(const_slots, &vec![1, 0]);
        assert!(sig.residual.is_none(), "fully indexable");
    }

    #[test]
    fn equality_beats_range_and_residual_keeps_rest() {
        let (sig, _) = analyze("emp.salary > 50000 and emp.dept = 3");
        assert!(matches!(sig.index_plan, IndexPlan::Equality { .. }));
        let resid = sig.residual.expect("range conjunct is residual");
        assert_eq!(resid.conjuncts.len(), 1);
        assert_eq!(resid.to_string(), "emp.salary > CONSTANT1");
    }

    #[test]
    fn two_sided_range_plan() {
        let (sig, consts) = analyze("emp.salary > 50000 and emp.salary <= 90000");
        let IndexPlan::Range { col, lo, hi } = sig.index_plan else {
            panic!()
        };
        assert_eq!(col, 1);
        assert_eq!(lo, Some((0, false)));
        assert_eq!(hi, Some((1, true)));
        assert_eq!(consts, vec![Value::Int(50000), Value::Int(90000)]);
        assert!(sig.residual.is_none());
    }

    #[test]
    fn between_produces_range_plan() {
        let (sig, consts) = analyze("emp.salary between 1000 and 2000");
        let IndexPlan::Range { lo, hi, .. } = sig.index_plan else {
            panic!()
        };
        assert_eq!(lo, Some((0, true)));
        assert_eq!(hi, Some((1, true)));
        assert_eq!(consts.len(), 2);
    }

    #[test]
    fn reversed_operand_order_normalizes() {
        // `80000 < emp.salary` is the same probe as `emp.salary > 80000`
        // (but a distinct signature string — the paper's equivalence is
        // syntactic, so that is correct).
        let (sig, _) = analyze("80000 < emp.salary");
        let IndexPlan::Range { col, lo, hi } = sig.index_plan else {
            panic!()
        };
        assert_eq!(col, 1);
        assert_eq!(lo, Some((0, false)));
        assert!(hi.is_none());
    }

    #[test]
    fn or_and_not_are_not_indexable() {
        let (sig, _) = analyze("emp.dept = 1 or emp.dept = 2");
        assert!(matches!(sig.index_plan, IndexPlan::None));
        assert!(sig.residual.is_some());

        let (sig, _) = analyze("emp.name <> 'Bob'");
        assert!(matches!(sig.index_plan, IndexPlan::None));
    }

    #[test]
    fn arithmetic_on_column_is_not_indexable() {
        let (sig, consts) = analyze("emp.salary * 2 > 100");
        assert!(matches!(sig.index_plan, IndexPlan::None));
        assert_eq!(consts, vec![Value::Int(2), Value::Int(100)]);
        assert_eq!(sig.key.desc, "(emp.salary * CONSTANT1) > CONSTANT2");
    }

    #[test]
    fn aliases_do_not_change_signatures() {
        // Same predicate via differently-named tuple variables, after
        // canonicalization onto the data-source name.
        let schema = emp();
        let mk = |var: &str, cond: &str| {
            let ctx = BindCtx::new(vec![(var.to_string(), &schema)]);
            let cnf = to_cnf(&ctx.pred(&parse_expression(cond).unwrap()).unwrap()).unwrap();
            let canon = crate::cnf::remap_var(&cnf, 0, 0, "emp");
            analyze_selection(&canon, DataSourceId(1), EventKind::Insert, vec![]).0
        };
        let a = mk("e", "e.salary > 10");
        let b = mk("worker", "worker.salary > 99");
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn selectivity_ordering() {
        let schema = emp();
        let ctx = BindCtx::new(vec![("emp".into(), &schema)]);
        let sel = |cond: &str| {
            let cnf = to_cnf(&ctx.pred(&parse_expression(cond).unwrap()).unwrap()).unwrap();
            conjunct_selectivity(&cnf.conjuncts[0])
        };
        assert!(sel("emp.dept = 1") < sel("emp.salary > 5"));
        assert!(sel("emp.salary > 5") < sel("emp.dept <> 1"));
        assert!(sel("emp.dept = 1") < sel("emp.dept = 1 or emp.dept = 2"));
    }

    fn cnf_of(cond: &str) -> Cnf {
        let schema = emp();
        let ctx = BindCtx::new(vec![("emp".into(), &schema)]);
        to_cnf(&ctx.pred(&parse_expression(cond).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn decompose_splits_selectable_disjunction() {
        let branches = decompose_disjunction(&cnf_of("emp.dept = 1 or emp.dept = 2")).unwrap();
        assert_eq!(branches.len(), 2);
        for b in &branches {
            let (sig, _) = analyze_selection(b, DataSourceId(1), EventKind::Insert, vec![]);
            assert!(matches!(sig.index_plan, IndexPlan::Equality { .. }));
            assert!(sig.residual.is_none(), "single-atom branch fully indexed");
        }
        // The two branches carry different constants and different keys.
        let (sa, ca) = analyze_selection(&branches[0], DataSourceId(1), EventKind::Insert, vec![]);
        let (sb, cb) = analyze_selection(&branches[1], DataSourceId(1), EventKind::Insert, vec![]);
        assert_eq!(sa.key, sb.key, "same shape, same signature class");
        assert_eq!(ca, vec![Value::Int(1)]);
        assert_eq!(cb, vec![Value::Int(2)]);
    }

    #[test]
    fn decompose_keeps_residual_in_every_branch() {
        let branches = decompose_disjunction(&cnf_of(
            "(emp.dept = 1 or emp.salary > 100) and emp.name like 'B%'",
        ))
        .unwrap();
        assert_eq!(branches.len(), 2);
        let (s0, _) = analyze_selection(&branches[0], DataSourceId(1), EventKind::Insert, vec![]);
        assert!(matches!(s0.index_plan, IndexPlan::Equality { .. }));
        assert!(s0.residual.is_some(), "LIKE conjunct stays residual");
        let (s1, _) = analyze_selection(&branches[1], DataSourceId(1), EventKind::Insert, vec![]);
        assert!(matches!(s1.index_plan, IndexPlan::Range { .. }));
        assert!(s1.residual.is_some());
    }

    #[test]
    fn decompose_dedupes_identical_disjuncts() {
        let branches = decompose_disjunction(&cnf_of("emp.dept = 1 or emp.dept = 1"));
        // Simplification may collapse the duplicate before we ever see it;
        // either way at most one branch per distinct atom survives.
        if let Some(branches) = branches {
            assert_eq!(branches.len(), 1);
        }
    }

    #[test]
    fn decompose_refuses_unselectable_disjuncts() {
        // A LIKE, negation, or arithmetic disjunct poisons the whole
        // disjunction: one branch would need a linear scan anyway.
        assert!(decompose_disjunction(&cnf_of("emp.name like 'B%' or emp.dept = 1")).is_none());
        assert!(decompose_disjunction(&cnf_of("emp.dept <> 1 or emp.dept = 2")).is_none());
        assert!(decompose_disjunction(&cnf_of("emp.salary * 2 > 10 or emp.dept = 1")).is_none());
        // No disjunction at all.
        assert!(decompose_disjunction(&cnf_of("emp.dept = 1")).is_none());
        assert!(decompose_disjunction(&cnf_of("emp.dept = 1 and emp.salary > 5")).is_none());
    }

    #[test]
    fn decompose_respects_branch_cap() {
        let wide = (0..MAX_TAGGED_DISJUNCTS + 1)
            .map(|i| format!("emp.dept = {i}"))
            .collect::<Vec<_>>()
            .join(" or ");
        assert!(decompose_disjunction(&cnf_of(&wide)).is_none());
        let ok = (0..MAX_TAGGED_DISJUNCTS)
            .map(|i| format!("emp.dept = {i}"))
            .collect::<Vec<_>>()
            .join(" or ");
        assert_eq!(
            decompose_disjunction(&cnf_of(&ok)).unwrap().len(),
            MAX_TAGGED_DISJUNCTS
        );
    }

    #[test]
    fn duplicate_equality_on_same_column() {
        // x = 1 AND x = 2: only one becomes the key; the other is residual
        // (and can never match, which is the trigger author's problem).
        let (sig, _) = analyze("emp.dept = 1 and emp.dept = 2");
        let IndexPlan::Equality { cols, .. } = &sig.index_plan else {
            panic!()
        };
        assert_eq!(cols, &vec![2]);
        assert!(sig.residual.is_some());
    }

    #[test]
    fn empty_selection_is_event_only_signature() {
        let cnf = Cnf::truth();
        let (sig, consts) = analyze_selection(&cnf, DataSourceId(3), EventKind::Delete, vec![]);
        assert_eq!(sig.key.desc, "true");
        assert_eq!(sig.num_consts, 0);
        assert!(consts.is_empty());
        assert!(matches!(sig.index_plan, IndexPlan::None));
        assert!(sig.residual.is_none());
    }
}
