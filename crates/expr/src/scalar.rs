//! Resolved scalar expressions.
//!
//! A [`Scalar`] is a parsed expression bound to concrete tuple-variable and
//! column ordinals, evaluated against an [`Env`] of tuples. The
//! [`Scalar::Placeholder`] variant is what makes expression signatures work:
//! generalizing a predicate replaces every [`Scalar::Const`] with a numbered
//! placeholder, and evaluation then draws the constant from the
//! environment's constant vector instead (§5).

use std::fmt;
use tman_common::{Result, TmanError, Tuple, Value};

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// Absolute value of a numeric.
    Abs,
    /// String length.
    Length,
    /// Lower-case a string.
    Lower,
    /// Upper-case a string.
    Upper,
    /// Round a numeric to the nearest integer.
    Round,
    /// Remainder of integer division: `mod(a, b)`.
    Mod,
}

impl Func {
    /// Resolve a (case-insensitive) function name.
    pub fn by_name(name: &str) -> Option<Func> {
        match name.to_ascii_lowercase().as_str() {
            "abs" => Some(Func::Abs),
            "length" => Some(Func::Length),
            "lower" => Some(Func::Lower),
            "upper" => Some(Func::Upper),
            "round" => Some(Func::Round),
            "mod" => Some(Func::Mod),
            _ => None,
        }
    }

    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            Func::Mod => 2,
            _ => 1,
        }
    }

    /// Name for diagnostics and signature descriptions.
    pub fn name(self) -> &'static str {
        match self {
            Func::Abs => "abs",
            Func::Length => "length",
            Func::Lower => "lower",
            Func::Upper => "upper",
            Func::Round => "round",
            Func::Mod => "mod",
        }
    }
}

/// Arithmetic operators (comparisons live on predicates, not scalars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition (numeric) or string concatenation is *not* supported — the
    /// paper's type system has no string concatenation operator.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always float).
    Div,
}

impl ArithOp {
    fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A literal constant.
    Const(Value),
    /// `CONSTANT_i` placeholder in a generalized expression; evaluation
    /// reads `env.consts[i]`.
    Placeholder(usize),
    /// Column `col` of tuple variable `var` (both ordinals). The display
    /// name is kept for signature descriptions and diagnostics.
    Col {
        /// Tuple-variable ordinal within the trigger's `from` list.
        var: usize,
        /// Column ordinal within that variable's schema.
        col: usize,
        /// `var.column` display name.
        name: String,
    },
    /// Arithmetic negation.
    Neg(Box<Scalar>),
    /// Binary arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Scalar>,
        /// Right operand.
        right: Box<Scalar>,
    },
    /// Built-in function call.
    Call {
        /// Function.
        func: Func,
        /// Arguments.
        args: Vec<Scalar>,
    },
}

/// Evaluation environment: one tuple per tuple variable, plus the constant
/// vector placeholders resolve against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Env<'a> {
    /// Tuples bound to the trigger's tuple variables, by ordinal. Entries
    /// may be `None` when evaluating a predicate that only touches a subset
    /// of variables (e.g. a selection predicate during token processing).
    pub tuples: &'a [Option<&'a Tuple>],
    /// Constants for [`Scalar::Placeholder`].
    pub consts: &'a [Value],
}

impl<'a> Env<'a> {
    /// Environment with a single tuple bound to variable 0 (selection
    /// predicates).
    pub fn single(t: &'a Option<&'a Tuple>) -> Env<'a> {
        Env {
            tuples: std::slice::from_ref(t),
            consts: &[],
        }
    }
}

impl Scalar {
    /// Evaluate to a value. NULL propagates through every operator.
    pub fn eval(&self, env: &Env<'_>) -> Result<Value> {
        match self {
            Scalar::Const(v) => Ok(v.clone()),
            Scalar::Placeholder(i) => env.consts.get(*i).cloned().ok_or_else(|| {
                TmanError::Internal(format!(
                    "placeholder {i} out of range ({} constants)",
                    env.consts.len()
                ))
            }),
            Scalar::Col { var, col, name } => {
                let t = env
                    .tuples
                    .get(*var)
                    .and_then(|t| t.as_ref())
                    .ok_or_else(|| {
                        TmanError::Internal(format!("no tuple bound for variable of '{name}'"))
                    })?;
                Ok(t.get(*col).clone())
            }
            Scalar::Neg(e) => match e.eval(env)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                v => Err(TmanError::Type(format!("cannot negate {v}"))),
            },
            Scalar::Arith { op, left, right } => {
                let l = left.eval(env)?;
                let r = right.eval(env)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                arith(*op, &l, &r)
            }
            Scalar::Call { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let v = a.eval(env)?;
                    if v.is_null() {
                        return Ok(Value::Null);
                    }
                    vals.push(v);
                }
                apply_func(*func, &vals)
            }
        }
    }

    /// Bit mask of tuple-variable ordinals this expression references.
    pub fn var_mask(&self) -> u64 {
        match self {
            Scalar::Const(_) | Scalar::Placeholder(_) => 0,
            Scalar::Col { var, .. } => 1u64 << var,
            Scalar::Neg(e) => e.var_mask(),
            Scalar::Arith { left, right, .. } => left.var_mask() | right.var_mask(),
            Scalar::Call { args, .. } => args.iter().map(Scalar::var_mask).fold(0, |a, b| a | b),
        }
    }

    /// True if this expression contains no column references (it can be
    /// constant-folded — it may still contain placeholders).
    pub fn is_constant(&self) -> bool {
        self.var_mask() == 0
    }

    /// Replace every `Const` with a `Placeholder`, appending the constants
    /// to `consts` in left-to-right order (§5: "If the entire expression
    /// has m constants, they are numbered 1 to m from left to right").
    pub fn generalize(&self, consts: &mut Vec<Value>) -> Scalar {
        match self {
            Scalar::Const(v) => {
                consts.push(v.clone());
                Scalar::Placeholder(consts.len() - 1)
            }
            Scalar::Placeholder(i) => Scalar::Placeholder(*i),
            Scalar::Col { .. } => self.clone(),
            Scalar::Neg(e) => Scalar::Neg(Box::new(e.generalize(consts))),
            Scalar::Arith { op, left, right } => Scalar::Arith {
                op: *op,
                left: Box::new(left.generalize(consts)),
                right: Box::new(right.generalize(consts)),
            },
            Scalar::Call { func, args } => Scalar::Call {
                func: *func,
                args: args.iter().map(|a| a.generalize(consts)).collect(),
            },
        }
    }

    /// If this is a bare column reference, its (var, col).
    pub fn as_column(&self) -> Option<(usize, usize)> {
        match self {
            Scalar::Col { var, col, .. } => Some((*var, *col)),
            _ => None,
        }
    }

    /// If this is a placeholder, its index.
    pub fn as_placeholder(&self) -> Option<usize> {
        match self {
            Scalar::Placeholder(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Const(v) => write!(f, "{v}"),
            Scalar::Placeholder(i) => write!(f, "CONSTANT{}", i + 1),
            Scalar::Col { name, .. } => write!(f, "{name}"),
            Scalar::Neg(e) => write!(f, "-({e})"),
            Scalar::Arith { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Scalar::Call { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    // Integer arithmetic stays integral except division.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    return Err(TmanError::Type("division by zero".into()));
                }
                Value::Float(*a as f64 / *b as f64)
            }
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(TmanError::Type(format!(
                "arithmetic on non-numeric values {l} {} {r}",
                op.symbol()
            )))
        }
    };
    Ok(Value::Float(match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        ArithOp::Div => {
            if b == 0.0 {
                return Err(TmanError::Type("division by zero".into()));
            }
            a / b
        }
    }))
}

fn apply_func(func: Func, vals: &[Value]) -> Result<Value> {
    if vals.len() != func.arity() {
        return Err(TmanError::Type(format!(
            "{} takes {} argument(s), got {}",
            func.name(),
            func.arity(),
            vals.len()
        )));
    }
    match func {
        Func::Abs => match &vals[0] {
            Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            v => Err(TmanError::Type(format!("abs of non-numeric {v}"))),
        },
        Func::Length => match &vals[0] {
            Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
            v => Err(TmanError::Type(format!("length of non-string {v}"))),
        },
        Func::Lower | Func::Upper => match &vals[0] {
            Value::Str(s) => Ok(Value::Str(if func == Func::Lower {
                s.to_lowercase()
            } else {
                s.to_uppercase()
            })),
            v => Err(TmanError::Type(format!(
                "{} of non-string {v}",
                func.name()
            ))),
        },
        Func::Round => match &vals[0] {
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Float(f) => Ok(Value::Int(f.round() as i64)),
            v => Err(TmanError::Type(format!("round of non-numeric {v}"))),
        },
        Func::Mod => match (&vals[0], &vals[1]) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(TmanError::Type("mod by zero".into()))
                } else {
                    Ok(Value::Int(a.rem_euclid(*b)))
                }
            }
            (a, b) => Err(TmanError::Type(format!("mod of non-integers {a}, {b}"))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with<'a>(t: &'a Option<&'a Tuple>, consts: &'a [Value]) -> Env<'a> {
        Env {
            tuples: std::slice::from_ref(t),
            consts,
        }
    }

    fn col(var: usize, col: usize) -> Scalar {
        Scalar::Col {
            var,
            col,
            name: format!("v{var}.c{col}"),
        }
    }

    #[test]
    fn arithmetic_and_null_propagation() {
        let t = Tuple::new(vec![Value::Int(10), Value::Null]);
        let bind = Some(&t);
        let env = env_with(&bind, &[]);
        let e = Scalar::Arith {
            op: ArithOp::Add,
            left: Box::new(col(0, 0)),
            right: Box::new(Scalar::Const(Value::Int(5))),
        };
        assert_eq!(e.eval(&env).unwrap(), Value::Int(15));
        let e = Scalar::Arith {
            op: ArithOp::Mul,
            left: Box::new(col(0, 1)),
            right: Box::new(Scalar::Const(Value::Int(5))),
        };
        assert_eq!(e.eval(&env).unwrap(), Value::Null);
    }

    #[test]
    fn division_semantics() {
        let env = Env::default();
        let div = |a: i64, b: i64| Scalar::Arith {
            op: ArithOp::Div,
            left: Box::new(Scalar::Const(Value::Int(a))),
            right: Box::new(Scalar::Const(Value::Int(b))),
        };
        assert_eq!(div(7, 2).eval(&env).unwrap(), Value::Float(3.5));
        assert!(div(1, 0).eval(&env).is_err());
    }

    #[test]
    fn functions() {
        let env = Env::default();
        let call = |func, args: Vec<Scalar>| Scalar::Call { func, args };
        assert_eq!(
            call(Func::Abs, vec![Scalar::Const(Value::Int(-3))])
                .eval(&env)
                .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            call(Func::Length, vec![Scalar::Const(Value::str("héllo"))])
                .eval(&env)
                .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            call(Func::Upper, vec![Scalar::Const(Value::str("abc"))])
                .eval(&env)
                .unwrap(),
            Value::str("ABC")
        );
        assert_eq!(
            call(
                Func::Mod,
                vec![Scalar::Const(Value::Int(-7)), Scalar::Const(Value::Int(3))]
            )
            .eval(&env)
            .unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            call(Func::Round, vec![Scalar::Const(Value::Float(2.6))])
                .eval(&env)
                .unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn generalize_numbers_constants_left_to_right() {
        // salary + 100 > 2 * bonus  (as a scalar tree: (salary + 100), we
        // generalize each side) — constants numbered in order.
        let e = Scalar::Arith {
            op: ArithOp::Add,
            left: Box::new(Scalar::Arith {
                op: ArithOp::Mul,
                left: Box::new(Scalar::Const(Value::Int(2))),
                right: Box::new(col(0, 0)),
            }),
            right: Box::new(Scalar::Const(Value::Int(100))),
        };
        let mut consts = Vec::new();
        let g = e.generalize(&mut consts);
        assert_eq!(consts, vec![Value::Int(2), Value::Int(100)]);
        assert_eq!(g.to_string(), "((CONSTANT1 * v0.c0) + CONSTANT2)");
        // Evaluating the generalized form with the constants bound gives
        // the same result as the original.
        let t = Tuple::new(vec![Value::Int(7)]);
        let bind = Some(&t);
        let env0 = env_with(&bind, &[]);
        let env1 = env_with(&bind, &consts);
        assert_eq!(e.eval(&env0).unwrap(), g.eval(&env1).unwrap());
    }

    #[test]
    fn var_mask_tracks_references() {
        let e = Scalar::Arith {
            op: ArithOp::Add,
            left: Box::new(col(0, 0)),
            right: Box::new(col(2, 1)),
        };
        assert_eq!(e.var_mask(), 0b101);
        assert!(!e.is_constant());
        assert!(Scalar::Const(Value::Int(1)).is_constant());
    }

    #[test]
    fn placeholder_out_of_range_is_internal_error() {
        let env = Env::default();
        assert!(matches!(
            Scalar::Placeholder(0).eval(&env),
            Err(TmanError::Internal(_))
        ));
    }
}
