//! Conjunctive normal form and the trigger condition graph (§4, §5.1).

use crate::pred::{AtomKind, AtomicPred, Pred};
use crate::scalar::{Env, Scalar};
use std::fmt;
use tman_common::{Result, TmanError, Value};

/// Cap on CNF size to bound the distribution blow-up for adversarial
/// conditions (triggers in practice have a handful of conjuncts).
const MAX_CONJUNCTS: usize = 4096;

/// One conjunct: a disjunction of atomic clauses
/// (`C_i1 OR C_i2 OR ... OR C_iN`).
#[derive(Debug, Clone, PartialEq)]
pub struct Conjunct {
    /// The OR'd atomic predicates.
    pub atoms: Vec<AtomicPred>,
}

impl Conjunct {
    /// Three-valued OR over the atoms.
    pub fn eval(&self, env: &Env<'_>) -> Result<Option<bool>> {
        let mut unknown = false;
        for a in &self.atoms {
            match a.eval(env)? {
                Some(true) => return Ok(Some(true)),
                None => unknown = true,
                Some(false) => {}
            }
        }
        Ok(if unknown { None } else { Some(false) })
    }

    /// Variables referenced by any atom.
    pub fn var_mask(&self) -> u64 {
        self.atoms
            .iter()
            .map(AtomicPred::var_mask)
            .fold(0, |a, b| a | b)
    }

    /// Generalize all atoms (constants → placeholders).
    pub fn generalize(&self, consts: &mut Vec<Value>) -> Conjunct {
        Conjunct {
            atoms: self.atoms.iter().map(|a| a.generalize(consts)).collect(),
        }
    }

    /// True if this is the single-atom constant `false` clause.
    pub fn is_const_false(&self) -> bool {
        self.atoms.len() == 1
            && matches!(
                &self.atoms[0],
                AtomicPred {
                    negated: false,
                    kind: AtomKind::Const(false)
                }
            )
    }
}

impl fmt::Display for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.len() > 1 {
            write!(f, "(")?;
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            write!(f, "{a}")?;
        }
        if self.atoms.len() > 1 {
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A predicate in conjunctive normal form: the AND of its conjuncts.
/// The empty CNF is TRUE.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cnf {
    /// The AND'd conjuncts.
    pub conjuncts: Vec<Conjunct>,
}

impl Cnf {
    /// The always-true CNF.
    pub fn truth() -> Cnf {
        Cnf {
            conjuncts: Vec::new(),
        }
    }

    /// Is this trivially true (no conjuncts)?
    pub fn is_truth(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Three-valued AND over the conjuncts.
    pub fn eval(&self, env: &Env<'_>) -> Result<Option<bool>> {
        let mut unknown = false;
        for c in &self.conjuncts {
            match c.eval(env)? {
                Some(false) => return Ok(Some(false)),
                None => unknown = true,
                Some(true) => {}
            }
        }
        Ok(if unknown { None } else { Some(true) })
    }

    /// Does the CNF hold (`Some(true)`)?
    pub fn matches(&self, env: &Env<'_>) -> Result<bool> {
        Ok(self.eval(env)? == Some(true))
    }

    /// Variables referenced.
    pub fn var_mask(&self) -> u64 {
        self.conjuncts
            .iter()
            .map(Conjunct::var_mask)
            .fold(0, |a, b| a | b)
    }

    /// Generalize all conjuncts, collecting constants left-to-right.
    pub fn generalize(&self, consts: &mut Vec<Value>) -> Cnf {
        Cnf {
            conjuncts: self
                .conjuncts
                .iter()
                .map(|c| c.generalize(consts))
                .collect(),
        }
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "true");
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Convert a predicate to CNF: negation normal form, then distribution of
/// OR over AND, then constant simplification.
pub fn to_cnf(p: &Pred) -> Result<Cnf> {
    let nnf = push_not(p, false)?;
    let mut cnf = distribute(&nnf)?;
    simplify(&mut cnf);
    Ok(cnf)
}

/// Negation normal form: negations pushed onto atoms.
fn push_not(p: &Pred, neg: bool) -> Result<Pred> {
    Ok(match p {
        Pred::Not(inner) => push_not(inner, !neg)?,
        Pred::And(ps) => {
            let parts: Vec<Pred> = ps.iter().map(|q| push_not(q, neg)).collect::<Result<_>>()?;
            if neg {
                Pred::Or(parts)
            } else {
                Pred::And(parts)
            }
        }
        Pred::Or(ps) => {
            let parts: Vec<Pred> = ps.iter().map(|q| push_not(q, neg)).collect::<Result<_>>()?;
            if neg {
                Pred::And(parts)
            } else {
                Pred::Or(parts)
            }
        }
        Pred::Atom(a) => {
            if !neg {
                Pred::Atom(a.clone())
            } else {
                Pred::Atom(negate_atom(a))
            }
        }
    })
}

fn negate_atom(a: &AtomicPred) -> AtomicPred {
    match &a.kind {
        AtomKind::Const(b) => AtomicPred {
            negated: false,
            kind: AtomKind::Const(if a.negated { *b } else { !*b }),
        },
        AtomKind::Cmp { op, left, right } if !a.negated => match op.negate() {
            Some(nop) => AtomicPred::cmp(nop, left.clone(), right.clone()),
            None => AtomicPred {
                negated: true,
                kind: a.kind.clone(),
            },
        },
        _ => AtomicPred {
            negated: !a.negated,
            kind: a.kind.clone(),
        },
    }
}

/// Distribute OR over AND, producing clause lists.
fn distribute(p: &Pred) -> Result<Cnf> {
    Ok(match p {
        Pred::Atom(a) => Cnf {
            conjuncts: vec![Conjunct {
                atoms: vec![a.clone()],
            }],
        },
        Pred::And(ps) => {
            let mut out = Vec::new();
            for q in ps {
                out.extend(distribute(q)?.conjuncts);
                if out.len() > MAX_CONJUNCTS {
                    return Err(TmanError::Unsupported(
                        "trigger condition too complex to normalize (CNF blow-up)".into(),
                    ));
                }
            }
            Cnf { conjuncts: out }
        }
        Pred::Or(ps) => {
            // CNF(a OR b) = { Ca ∪ Cb : Ca ∈ CNF(a), Cb ∈ CNF(b) }
            let mut acc: Vec<Conjunct> = vec![Conjunct { atoms: Vec::new() }];
            for q in ps {
                let qc = distribute(q)?;
                let mut next = Vec::with_capacity(acc.len() * qc.conjuncts.len());
                for a in &acc {
                    for b in &qc.conjuncts {
                        let mut atoms = a.atoms.clone();
                        atoms.extend(b.atoms.iter().cloned());
                        next.push(Conjunct { atoms });
                        if next.len() > MAX_CONJUNCTS {
                            return Err(TmanError::Unsupported(
                                "trigger condition too complex to normalize (CNF blow-up)".into(),
                            ));
                        }
                    }
                }
                acc = next;
            }
            Cnf { conjuncts: acc }
        }
        Pred::Not(_) => return Err(TmanError::Internal("NOT survived NNF conversion".into())),
    })
}

/// Drop constant-true clauses and constant-false atoms; collapse a CNF with
/// an unsatisfiable empty clause to the single FALSE clause.
fn simplify(cnf: &mut Cnf) {
    let mut false_cnf = false;
    cnf.conjuncts.retain_mut(|clause| {
        let mut clause_true = false;
        clause.atoms.retain(|a| match (&a.kind, a.negated) {
            (AtomKind::Const(b), neg) => {
                if *b != neg {
                    clause_true = true;
                }
                false
            }
            _ => true,
        });
        if clause_true {
            return false;
        }
        if clause.atoms.is_empty() {
            // Empty disjunction = FALSE ⇒ whole CNF false.
            false_cnf = true;
        }
        true
    });
    if false_cnf {
        cnf.conjuncts = vec![Conjunct {
            atoms: vec![AtomicPred::pos(AtomKind::Const(false))],
        }];
    }
}

/// A join edge of the trigger condition graph.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    /// Lower variable ordinal.
    pub a: usize,
    /// Higher variable ordinal.
    pub b: usize,
    /// The AND of the conjuncts referring to exactly `{a, b}`.
    pub pred: Cnf,
}

/// §5.1 step 3: "an undirected graph with a node for each tuple variable,
/// and an edge for each join predicate identified", selection predicates on
/// the nodes, and a catch-all list for conjuncts over zero or 3+ variables.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionGraph {
    /// Number of tuple variables.
    pub num_vars: usize,
    /// Per-variable selection predicate (TRUE when absent).
    pub selections: Vec<Cnf>,
    /// Join predicates, one edge per variable pair that co-occurs.
    pub joins: Vec<JoinEdge>,
    /// Trivial (0-variable) and hyper-join (3+-variable) conjuncts,
    /// evaluated after all joins ("handled as special cases").
    pub catch_all: Vec<Conjunct>,
}

impl ConditionGraph {
    /// Group a CNF's conjuncts by the set of tuple variables they refer to.
    pub fn build(cnf: Cnf, num_vars: usize) -> ConditionGraph {
        let mut g = ConditionGraph {
            num_vars,
            selections: vec![Cnf::truth(); num_vars],
            joins: Vec::new(),
            catch_all: Vec::new(),
        };
        for clause in cnf.conjuncts {
            let mask = clause.var_mask();
            match mask.count_ones() {
                1 => {
                    let var = mask.trailing_zeros() as usize;
                    g.selections[var].conjuncts.push(clause);
                }
                2 => {
                    let a = mask.trailing_zeros() as usize;
                    let b = (63 - mask.leading_zeros()) as usize;
                    match g.joins.iter_mut().find(|e| e.a == a && e.b == b) {
                        Some(edge) => edge.pred.conjuncts.push(clause),
                        None => g.joins.push(JoinEdge {
                            a,
                            b,
                            pred: Cnf {
                                conjuncts: vec![clause],
                            },
                        }),
                    }
                }
                _ => g.catch_all.push(clause),
            }
        }
        g
    }

    /// The join edges touching variable `v`.
    pub fn edges_of(&self, v: usize) -> impl Iterator<Item = &JoinEdge> + '_ {
        self.joins.iter().filter(move |e| e.a == v || e.b == v)
    }
}

/// Rewrite every column reference of variable `from` to variable `to`,
/// renaming the display qualifier to `display`. Used to canonicalize a
/// selection predicate onto variable 0 before signature extraction, so
/// tuple-variable aliases don't affect signature identity.
pub fn remap_var(cnf: &Cnf, from: usize, to: usize, display: &str) -> Cnf {
    fn remap_scalar(s: &Scalar, from: usize, to: usize, display: &str) -> Scalar {
        match s {
            Scalar::Col { var, col, name } if *var == from => Scalar::Col {
                var: to,
                col: *col,
                name: match name.rsplit_once('.') {
                    Some((_, c)) => format!("{display}.{c}"),
                    None => name.clone(),
                },
            },
            Scalar::Neg(e) => Scalar::Neg(Box::new(remap_scalar(e, from, to, display))),
            Scalar::Arith { op, left, right } => Scalar::Arith {
                op: *op,
                left: Box::new(remap_scalar(left, from, to, display)),
                right: Box::new(remap_scalar(right, from, to, display)),
            },
            Scalar::Call { func, args } => Scalar::Call {
                func: *func,
                args: args
                    .iter()
                    .map(|a| remap_scalar(a, from, to, display))
                    .collect(),
            },
            other => other.clone(),
        }
    }
    Cnf {
        conjuncts: cnf
            .conjuncts
            .iter()
            .map(|c| Conjunct {
                atoms: c
                    .atoms
                    .iter()
                    .map(|a| {
                        let kind = match &a.kind {
                            AtomKind::Const(b) => AtomKind::Const(*b),
                            AtomKind::IsNull(s) => {
                                AtomKind::IsNull(remap_scalar(s, from, to, display))
                            }
                            AtomKind::Cmp { op, left, right } => AtomKind::Cmp {
                                op: *op,
                                left: remap_scalar(left, from, to, display),
                                right: remap_scalar(right, from, to, display),
                            },
                        };
                        AtomicPred {
                            negated: a.negated,
                            kind,
                        }
                    })
                    .collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::BindCtx;
    use tman_common::{DataType, Schema, Tuple};
    use tman_lang::parse_expression;

    fn schemas() -> (Schema, Schema, Schema) {
        (
            Schema::from_pairs(&[("spno", DataType::Int), ("name", DataType::Varchar(20))]),
            Schema::from_pairs(&[
                ("hno", DataType::Int),
                ("price", DataType::Float),
                ("nno", DataType::Int),
            ]),
            Schema::from_pairs(&[("spno", DataType::Int), ("nno", DataType::Int)]),
        )
    }

    fn cnf_of(cond: &str) -> Cnf {
        let (s, h, r) = schemas();
        let ctx = BindCtx::new(vec![("s".into(), &s), ("h".into(), &h), ("r".into(), &r)]);
        to_cnf(&ctx.pred(&parse_expression(cond).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn already_cnf_stays_put() {
        let c = cnf_of("s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno");
        assert_eq!(c.conjuncts.len(), 3);
        assert_eq!(
            c.to_string(),
            "s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno"
        );
    }

    #[test]
    fn distribution_of_or_over_and() {
        // a or (b and c)  ⇒  (a or b) and (a or c)
        let c = cnf_of("s.name = 'x' or (h.price > 1 and r.nno = 2)");
        assert_eq!(c.conjuncts.len(), 2);
        assert_eq!(c.conjuncts[0].atoms.len(), 2);
        assert_eq!(c.conjuncts[1].atoms.len(), 2);
    }

    #[test]
    fn negation_pushes_to_atoms() {
        // not (a and b) ⇒ (not a) or (not b), with comparisons folded.
        let c = cnf_of("not (h.price > 100 and s.name = 'x')");
        assert_eq!(c.conjuncts.len(), 1);
        let atoms = &c.conjuncts[0].atoms;
        assert_eq!(atoms.len(), 2);
        assert_eq!(
            atoms[0].to_string(),
            "h.price <= CONSTANT1".replace("CONSTANT1", "100")
        );
        assert_eq!(atoms[1].to_string(), "s.name <> 'x'");
    }

    #[test]
    fn double_negation_cancels() {
        let c = cnf_of("not not (h.price > 5)");
        assert_eq!(c.to_string(), "h.price > 5");
    }

    #[test]
    fn not_like_keeps_negation_flag() {
        let c = cnf_of("not (s.name like 'Ir%')");
        assert!(c.conjuncts[0].atoms[0].negated);
    }

    #[test]
    fn equivalence_under_cnf() {
        // The CNF must be logically equivalent to the original.
        let (s, h, r) = schemas();
        let ctx = BindCtx::new(vec![("s".into(), &s), ("h".into(), &h), ("r".into(), &r)]);
        let cond = "(s.name = 'a' or h.price > 10) and not (r.nno = 1 and s.spno = 2)";
        let pred = ctx.pred(&parse_expression(cond).unwrap()).unwrap();
        let cnf = to_cnf(&pred).unwrap();
        for spno in [1i64, 2] {
            for name in ["a", "b"] {
                for price in [5.0, 20.0] {
                    for nno in [1i64, 2] {
                        let ts = Tuple::new(vec![Value::Int(spno), Value::str(name)]);
                        let th =
                            Tuple::new(vec![Value::Int(1), Value::Float(price), Value::Int(nno)]);
                        let tr = Tuple::new(vec![Value::Int(spno), Value::Int(nno)]);
                        let binds = [Some(&ts), Some(&th), Some(&tr)];
                        let env = Env {
                            tuples: &binds,
                            consts: &[],
                        };
                        assert_eq!(pred.eval(&env).unwrap(), cnf.eval(&env).unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn condition_graph_grouping() {
        let c =
            cnf_of("s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno and h.price > 100000");
        let g = ConditionGraph::build(c, 3);
        assert_eq!(g.selections[0].conjuncts.len(), 1); // s.name = 'Iris'
        assert!(g.selections[1].conjuncts.len() == 1); // h.price
        assert!(g.selections[2].is_truth());
        assert_eq!(g.joins.len(), 2);
        assert!(g.catch_all.is_empty());
        assert_eq!(g.edges_of(2).count(), 2); // r joins both s and h
    }

    #[test]
    fn hyper_join_and_trivial_go_to_catch_all() {
        let c = cnf_of("s.spno + r.spno = h.hno and 1 = 1");
        let g = ConditionGraph::build(c, 3);
        // `1 = 1` folds away entirely during simplification? No: it's a
        // comparison of two constants, not a Const atom, so it lands in the
        // catch-all with zero variables — exactly the paper's trivial
        // predicate case.
        assert_eq!(g.catch_all.len(), 2);
        assert!(g.joins.is_empty());
    }

    #[test]
    fn constant_folding_simplifies() {
        let (s, h, r) = schemas();
        let ctx = BindCtx::new(vec![("s".into(), &s), ("h".into(), &h), ("r".into(), &r)]);
        // `x or true` clause drops; `x and false` collapses to FALSE.
        let p = Pred::And(vec![
            ctx.pred(&parse_expression("s.spno = 1").unwrap()).unwrap(),
            Pred::truth(false),
        ]);
        let c = to_cnf(&p).unwrap();
        assert_eq!(c.conjuncts.len(), 1);
        assert!(c.conjuncts[0].is_const_false());

        let p = Pred::Or(vec![
            ctx.pred(&parse_expression("s.spno = 1").unwrap()).unwrap(),
            Pred::truth(true),
        ]);
        let c = to_cnf(&p).unwrap();
        assert!(c.is_truth());
    }

    #[test]
    fn cnf_blowup_is_bounded() {
        // (a1 and b1) or (a2 and b2) or ... repeated enough to exceed the
        // conjunct cap must error, not hang.
        let mut cond = String::new();
        for i in 0..16 {
            if i > 0 {
                cond.push_str(" or ");
            }
            cond.push_str(&format!("(h.price > {i} and h.hno = {i} and h.nno = {i})"));
        }
        let (s, h, r) = schemas();
        let ctx = BindCtx::new(vec![("s".into(), &s), ("h".into(), &h), ("r".into(), &r)]);
        let p = ctx.pred(&parse_expression(&cond).unwrap()).unwrap();
        match to_cnf(&p) {
            Err(TmanError::Unsupported(_)) => {}
            Ok(c) => assert!(c.conjuncts.len() <= MAX_CONJUNCTS),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn remap_var_rewrites_references_and_names() {
        let c = cnf_of("h.price > 100");
        assert_eq!(c.var_mask(), 0b010);
        let r = remap_var(&c, 1, 0, "house");
        assert_eq!(r.var_mask(), 0b001);
        assert_eq!(r.to_string(), "house.price > 100");
    }
}
