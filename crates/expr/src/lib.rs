//! `tman-expr` — compiled trigger conditions and expression signatures.
//!
//! This crate implements §4 and the analysis half of §5 of the paper:
//!
//! * [`scalar`] / [`pred`] — typed, resolved scalar expressions and
//!   predicates with SQL three-valued logic, evaluated against tuples.
//! * [`resolve`] — binding of parsed [`tman_lang::ast::Expr`] trees against
//!   tuple-variable schemas.
//! * [`cnf`] — conversion of `when` clauses to conjunctive normal form and
//!   grouping of conjuncts "by the set of data sources they refer to" into
//!   selection / join / trivial / hyper-join predicates, producing the
//!   *trigger condition graph* of §5.1 step 3.
//! * [`signature`] — *expression signatures*: the generalized expression
//!   with constants replaced by numbered placeholders, the constant vector,
//!   the signature description string (the catalog `signatureDesc`), the
//!   indexable/residual split `E = E_I AND E_NI`, and the most-selective-
//!   conjunct choice (\[Hans90\]).

pub mod cnf;
pub mod pred;
pub mod resolve;
pub mod scalar;
pub mod signature;

pub use cnf::{Cnf, ConditionGraph, Conjunct, JoinEdge};
pub use pred::{AtomKind, AtomicPred, CmpOp, Pred};
pub use resolve::BindCtx;
pub use scalar::{Env, Func, Scalar};
pub use signature::{
    decompose_disjunction, IndexPlan, SelectionSignature, SignatureKey, MAX_TAGGED_DISJUNCTS,
};
