//! E9 (Criterion): range-predicate stabbing — interval index vs linear
//! list at a fixed class size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use tman_bench::*;
use tman_common::EventKind;
use tman_predindex::{IndexConfig, OrgKind, PredicateIndex};

fn bench_ranges(c: &mut Criterion) {
    let n = 10_000;
    let ix = PredicateIndex::new(IndexConfig {
        list_to_index: usize::MAX,
        ..Default::default()
    });
    let mut r = rng(51);
    for i in 0..n {
        let lo = r.gen_range(0..100_000);
        add_to_index(
            &ix,
            i as u64,
            &format!("q.vol >= {lo} and q.vol < {}", lo + r.gen_range(1..500)),
            EventKind::Insert,
        );
    }
    let sig = ix.source(QUOTES).unwrap().signatures()[0].clone();
    let tokens = quote_tokens(64, 4, 52);

    let mut group = c.benchmark_group("e9_range_stab");
    for (label, kind) in [
        ("mem_list", OrgKind::MemList),
        ("interval_index", OrgKind::MemIndex),
    ] {
        sig.set_org(kind).unwrap();
        if kind == OrgKind::MemList {
            group.sample_size(10);
        }
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for t in &tokens {
                    ix.match_token(t, &mut |_| hits += 1).unwrap();
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranges);
criterion_main!(benches);
