//! E3 (Criterion): the four §5.2 constant-set organizations at a fixed
//! equivalence-class size. The size sweep lives in the `experiments`
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tman_bench::*;
use tman_common::EventKind;
use tman_predindex::{IndexConfig, OrgKind, PredicateIndex};
use tman_sql::Database;

fn bench_orgs(c: &mut Criterion) {
    let n = 10_000;
    let db = Arc::new(Database::open_memory(2048));
    let ix = PredicateIndex::with_database(IndexConfig::default(), db);
    for i in 0..n {
        add_to_index(&ix, i as u64, &format!("q.vol = {i}"), EventKind::Insert);
    }
    let sig = ix.source(QUOTES).unwrap().signatures()[0].clone();
    let tokens = quote_tokens(64, 4, 7);

    let mut group = c.benchmark_group("e3_constant_set_org");
    for kind in [
        OrgKind::MemList,
        OrgKind::MemIndex,
        OrgKind::DbTable,
        OrgKind::DbIndexed,
    ] {
        sig.set_org(kind).unwrap();
        if matches!(kind, OrgKind::MemList | OrgKind::DbTable) {
            group.sample_size(10); // the linear organizations are slow here
        }
        group.bench_with_input(BenchmarkId::new(kind.as_str(), n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for t in &tokens {
                    ix.match_token(t, &mut |_| hits += 1).unwrap();
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orgs);
criterion_main!(benches);
