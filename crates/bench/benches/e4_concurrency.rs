//! E4 (Criterion): token-level concurrency — drivers draining a shared
//! token queue. The condition- and action-level variants live in the
//! `experiments` binary (they need longer runs to be meaningful).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tman_bench::*;
use triggerman::Config;

fn bench_token_concurrency(c: &mut Criterion) {
    let n_tokens = 4_000;
    let mut group = c.benchmark_group("e4_token_level");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_tokens as u64));
    for &p in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("drivers", p), &p, |b, &p| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let cfg = Config {
                        num_cpus: Some(p),
                        driver_period: Duration::from_micros(100),
                        threshold: Duration::from_millis(20),
                        ..Default::default()
                    };
                    let (tman, src) = engine_with_alerts(cfg, 1_000, Template::all(), 100, 3);
                    let tokens = quote_tokens(n_tokens, 100, 4);
                    push_all(&tman, src, &tokens);
                    let pool = tman.start_drivers();
                    let t0 = std::time::Instant::now();
                    while tman.queue_len() > 0 {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    total += t0.elapsed();
                    pool.stop();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_token_concurrency);
criterion_main!(benches);
