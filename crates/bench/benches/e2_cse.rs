//! E2 (Criterion): Figure-4 normalization (common sub-expression
//! elimination) vs the denormalized constant-set layout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tman_bench::*;
use tman_common::{EventKind, Tuple, UpdateDescriptor, Value};
use tman_predindex::{IndexConfig, PredicateIndex};

fn bench_cse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_normalized_vs_denormalized");
    for &n in &[1_000usize, 10_000] {
        for (label, normalized) in [("normalized", true), ("denormalized", false)] {
            let ix = PredicateIndex::new(IndexConfig {
                normalized,
                list_to_index: usize::MAX,
                ..Default::default()
            });
            for i in 0..n {
                add_to_index(&ix, i as u64, "q.sym = 'HOT'", EventKind::Insert);
            }
            // Non-matching probe: normalization compares the shared
            // constant once; the denormalized list compares per entry.
            let miss = UpdateDescriptor::insert(
                QUOTES,
                Tuple::new(vec![Value::str("COLD"), Value::Float(1.0), Value::Int(1)]),
            );
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| ix.match_token(&miss, &mut |_| {}).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cse);
criterion_main!(benches);
