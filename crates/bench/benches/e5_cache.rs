//! E5 (Criterion): trigger-cache behaviour — pin cost on hit vs miss
//! (miss = recompile from catalog text, the §5.1 load path).

use criterion::{criterion_group, criterion_main, Criterion};
use tman_common::{Tuple, UpdateDescriptor, Value};
use triggerman::Config;

fn bench_cache(c: &mut Criterion) {
    let n = 4_096;
    let mk = |capacity: usize| {
        let cfg = Config {
            trigger_cache_capacity: capacity,
            ..Default::default()
        };
        let tman = triggerman::TriggerMan::open_memory(cfg).unwrap();
        tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
            .unwrap();
        for i in 0..n {
            tman.execute_command(&format!(
                "create trigger z{i} from q when q.vol = {i} do raise event Z(q.vol)"
            ))
            .unwrap();
        }
        let src = tman.source("q").unwrap().id;
        (tman, src)
    };

    let mut group = c.benchmark_group("e5_trigger_cache");
    group.sample_size(20);

    // All triggers resident: every pin is a hit.
    let (hot, src) = mk(n);
    let mut k = 0i64;
    group.bench_function("pin_hit", |b| {
        b.iter(|| {
            k = (k + 1) % n as i64;
            hot.push_token(UpdateDescriptor::insert(
                src,
                Tuple::new(vec![Value::str("X"), Value::Float(0.0), Value::Int(k)]),
            ))
            .unwrap();
            hot.run_until_quiescent().unwrap();
        })
    });

    // Tiny cache: round-robin access makes every pin a miss+recompile.
    let (cold, src2) = mk(8);
    let mut k2 = 0i64;
    group.bench_function("pin_miss_recompile", |b| {
        b.iter(|| {
            k2 = (k2 + 1) % n as i64;
            cold.push_token(UpdateDescriptor::insert(
                src2,
                Tuple::new(vec![Value::str("X"), Value::Float(0.0), Value::Int(k2)]),
            ))
            .unwrap();
            cold.run_until_quiescent().unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
