//! E1 (Criterion): token matching vs number of triggers — signature
//! predicate index vs naive ECA scan. See EXPERIMENTS.md §E1; the full
//! sweep lives in the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;
use tman_bench::*;
use tman_common::EventKind;
use tman_predindex::{IndexConfig, PredicateIndex};

fn bench_index_vs_naive(c: &mut Criterion) {
    let n_syms = 200;
    let tokens = quote_tokens(256, n_syms, 2);

    let mut group = c.benchmark_group("e1_match_token");
    for &n in &[100usize, 1_000, 10_000] {
        group.throughput(Throughput::Elements(tokens.len() as u64));

        let ix = PredicateIndex::new(IndexConfig::default());
        build_index(&ix, n, Template::all(), n_syms, 1);
        group.bench_with_input(BenchmarkId::new("signature_index", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for t in &tokens {
                    ix.match_token(t, &mut |_| hits += 1).unwrap();
                }
                hits
            })
        });

        let eca = tman_baseline::NaiveEca::new();
        let schema = quotes_schema();
        let mut r = rng(1);
        for i in 0..n {
            let t = Template::all()[i % Template::all().len()];
            eca.add_trigger(
                tman_common::TriggerId(i as u64),
                QUOTES,
                EventKind::Insert,
                "q",
                &schema,
                &t.condition(&mut r, n_syms),
            )
            .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("naive_eca", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for t in &tokens {
                    hits += eca.match_token(t).unwrap().len();
                }
                hits
            })
        });
    }
    group.finish();
}

/// Ablation: most-selective-conjunct indexing vs evaluating the whole
/// predicate (IndexPlan::None path) for equality+residual conditions.
fn bench_most_selective_conjunct(c: &mut Criterion) {
    let n = 10_000;
    let n_syms = 200;
    let tokens = quote_tokens(256, n_syms, 2);

    // Indexed: `sym = S AND price > p` probes on sym equality.
    let indexed = PredicateIndex::new(IndexConfig::default());
    build_index(&indexed, n, &[Template::SymAndPrice], n_syms, 1);

    // Un-indexed structural twin: an OR-wrapped version of the same
    // condition defeats the indexable-conjunct analysis, so every member
    // of the class is evaluated per token.
    let flat = PredicateIndex::new(IndexConfig::default());
    let mut r = rng(1);
    for i in 0..n {
        let sym = format!("S{}", r.gen_range(0..n_syms));
        let p = r.gen_range(0..1000);
        add_to_index(
            &flat,
            i as u64,
            &format!("(q.sym = '{sym}' and q.price > {p}) or (q.sym = '{sym}' and q.price > {p})"),
            EventKind::Insert,
        );
    }
    let mut group = c.benchmark_group("e1_conjunct_indexing");
    group.throughput(Throughput::Elements(tokens.len() as u64));
    group.bench_function("indexed_conjunct", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for t in &tokens {
                indexed.match_token(t, &mut |_| hits += 1).unwrap();
            }
            hits
        })
    });
    group.sample_size(10);
    group.bench_function("evaluate_all", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for t in &tokens {
                flat.match_token(t, &mut |_| hits += 1).unwrap();
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_index_vs_naive, bench_most_selective_conjunct);
criterion_main!(benches);
