//! E8 (Criterion): TREAT vs A-TREAT vs Rete on the paper's real-estate
//! join trigger — cost of one event-variable token through the network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tman_common::{DataSourceId, DataType, Schema, Tuple, Value};
use tman_expr::cnf::{to_cnf, ConditionGraph};
use tman_expr::BindCtx;
use tman_lang::parse_expression;
use tman_network::{MemSource, Network, NetworkKind, Polarity};

const SP: DataSourceId = DataSourceId(1);
const HOUSE: DataSourceId = DataSourceId(2);
const REP: DataSourceId = DataSourceId(3);

fn build(kind: NetworkKind) -> (Network, MemSource) {
    let s = Schema::from_pairs(&[("spno", DataType::Int), ("name", DataType::Varchar(20))]);
    let h = Schema::from_pairs(&[("hno", DataType::Int), ("nno", DataType::Int)]);
    let r = Schema::from_pairs(&[("spno", DataType::Int), ("nno", DataType::Int)]);
    let ctx = BindCtx::new(vec![("s".into(), &s), ("h".into(), &h), ("r".into(), &r)]);
    let cnf = to_cnf(
        &ctx.pred(
            &parse_expression("s.name = 'P7' and s.spno = r.spno and r.nno = h.nno").unwrap(),
        )
        .unwrap(),
    )
    .unwrap();
    let graph = ConditionGraph::build(cnf, 3);
    let net = Network::build(kind, graph, vec![SP, HOUSE, REP], 1).unwrap();

    let src = MemSource::new();
    src.set(
        SP,
        (0..200)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::str(format!("P{i}"))]))
            .collect(),
    );
    src.set(
        REP,
        (0..800)
            .map(|i| Tuple::new(vec![Value::Int(i % 200), Value::Int(i % 500)]))
            .collect(),
    );
    src.set(HOUSE, Vec::new());
    net.prime(&src).unwrap();
    (net, src)
}

fn bench_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_house_insert");
    for kind in [
        NetworkKind::Treat,
        NetworkKind::ATreat,
        NetworkKind::Rete,
        NetworkKind::Gator,
    ] {
        let (net, src) = build(kind);
        let mut hno = 0i64;
        group.bench_with_input(BenchmarkId::new(format!("{kind:?}"), 0), &0, |b, _| {
            b.iter(|| {
                hno += 1;
                let t = Tuple::new(vec![Value::Int(hno), Value::Int(hno % 500)]);
                let mut fires = 0usize;
                net.activate(1, Polarity::Plus, &t, &src, &mut |_| fires += 1)
                    .unwrap();
                // Retract so memories don't grow across iterations.
                net.activate(1, Polarity::Minus, &t, &src, &mut |_| {})
                    .unwrap();
                fires
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_networks);
criterion_main!(benches);
