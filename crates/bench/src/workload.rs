//! Synthetic workloads.
//!
//! The paper has no public trace of "millions of user-created triggers";
//! per DESIGN.md the substitution is a parameterized generator embodying
//! the paper's premise: *N triggers drawn from K expression-signature
//! templates, differing only in constants*, probed by token streams with
//! controllable skew.

use rand::prelude::*;
use std::sync::Arc;
use tman_common::{
    DataSourceId, DataType, EventKind, ExprId, NodeId, Schema, TriggerId, Tuple, UpdateDescriptor,
    Value,
};
use tman_expr::cnf::{remap_var, to_cnf};
use tman_expr::signature::analyze_selection;
use tman_expr::BindCtx;
use tman_lang::parse_expression;
use tman_predindex::PredicateIndex;

/// The quotes schema used by most experiments.
pub fn quotes_schema() -> Schema {
    Schema::from_pairs(&[
        ("sym", DataType::Varchar(12)),
        ("price", DataType::Float),
        ("vol", DataType::Int),
    ])
}

/// The data source id experiments use.
pub const QUOTES: DataSourceId = DataSourceId(1);

/// Deterministic RNG for reproducible experiment tables.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Zipf(θ) sampler over `{0, .., n-1}` (θ=0 is uniform; θ≈1 is the classic
/// web skew). Implemented here since `rand` has no distributions we allow.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler.
    pub fn new(n: usize, theta: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf { cdf }
    }

    /// Draw one rank (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// One of the K condition templates of the trigger population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Template {
    /// `sym = '<S>'` — pure equality.
    SymEq,
    /// `price > <p>` — one-sided range.
    PriceAbove,
    /// `price > <p> and price <= <p+w>` — two-sided range.
    PriceBand,
    /// `sym = '<S>' and price > <p>` — equality + residual.
    SymAndPrice,
    /// `vol = <v>` — integer equality.
    VolEq,
}

impl Template {
    /// All templates.
    pub fn all() -> &'static [Template] {
        &[
            Template::SymEq,
            Template::PriceAbove,
            Template::PriceBand,
            Template::SymAndPrice,
            Template::VolEq,
        ]
    }

    /// Render a condition over variable `q` with constants drawn from
    /// `rng` (`n_syms` distinct symbols, prices in 0..1000).
    pub fn condition(self, rng: &mut StdRng, n_syms: usize) -> String {
        let sym = format!("S{}", rng.gen_range(0..n_syms));
        let p = rng.gen_range(0..1000);
        match self {
            Template::SymEq => format!("q.sym = '{sym}'"),
            Template::PriceAbove => format!("q.price > {p}"),
            Template::PriceBand => {
                format!("q.price > {p} and q.price <= {}", p + rng.gen_range(1..50))
            }
            Template::SymAndPrice => format!("q.sym = '{sym}' and q.price > {p}"),
            Template::VolEq => format!("q.vol = {}", rng.gen_range(0..100_000)),
        }
    }
}

/// Register `cond` (over the quotes schema) in a raw predicate index.
pub fn add_to_index(ix: &PredicateIndex, id: u64, cond: &str, event: EventKind) {
    let schema = quotes_schema();
    let ctx = BindCtx::new(vec![("q".into(), &schema)]);
    let cnf = to_cnf(&ctx.pred(&parse_expression(cond).unwrap()).unwrap()).unwrap();
    let canon = remap_var(&cnf, 0, 0, "q");
    let (sig, consts) = analyze_selection(&canon, QUOTES, event, vec![]);
    ix.add_predicate(
        QUOTES,
        &schema,
        sig,
        consts,
        ExprId(id),
        TriggerId(id),
        NodeId(0),
    )
    .unwrap();
}

/// Build a raw predicate index holding `n` triggers drawn from `templates`.
pub fn build_index(
    ix: &PredicateIndex,
    n: usize,
    templates: &[Template],
    n_syms: usize,
    seed: u64,
) {
    let mut r = rng(seed);
    for i in 0..n {
        let t = templates[i % templates.len()];
        add_to_index(
            ix,
            i as u64,
            &t.condition(&mut r, n_syms),
            EventKind::Insert,
        );
    }
}

/// A random quote token.
pub fn quote_token(rng: &mut StdRng, n_syms: usize) -> UpdateDescriptor {
    UpdateDescriptor::insert(
        QUOTES,
        Tuple::new(vec![
            Value::str(format!("S{}", rng.gen_range(0..n_syms))),
            Value::Float(rng.gen_range(0.0..1000.0)),
            Value::Int(rng.gen_range(0..100_000)),
        ]),
    )
}

/// A batch of random quote tokens.
pub fn quote_tokens(n: usize, n_syms: usize, seed: u64) -> Vec<UpdateDescriptor> {
    let mut r = rng(seed);
    (0..n).map(|_| quote_token(&mut r, n_syms)).collect()
}

/// Spin up an engine with a `quotes` *stream* source (no backing table —
/// maximal token throughput) and `n` alert triggers from the standard
/// templates. Returns the engine and the source id.
pub fn engine_with_alerts(
    config: triggerman::Config,
    n: usize,
    templates: &[Template],
    n_syms: usize,
    seed: u64,
) -> (Arc<triggerman::TriggerMan>, DataSourceId) {
    let tman = triggerman::TriggerMan::open_memory(config).unwrap();
    tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
        .unwrap();
    let src = tman.source("q").unwrap().id;
    let mut r = rng(seed);
    for i in 0..n {
        let t = templates[i % templates.len()];
        let cond = t.condition(&mut r, n_syms);
        tman.execute_command(&format!(
            "create trigger a{i} from q when {cond} do raise event Matched(q.sym)"
        ))
        .unwrap();
    }
    (tman, src)
}

/// Push `tokens` with the data-source id rewritten to `src`.
pub fn push_all(
    tman: &Arc<triggerman::TriggerMan>,
    src: DataSourceId,
    tokens: &[UpdateDescriptor],
) {
    for t in tokens {
        let mut t = t.clone();
        t.data_src = src;
        tman.push_token(t).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tman_predindex::IndexConfig;

    #[test]
    fn zipf_is_skewed_and_complete() {
        let z = Zipf::new(1000, 0.9);
        let mut r = rng(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        // Rank 0 dominates; the tail is still reachable.
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
        assert!(counts[0] > 2_000, "head too light: {}", counts[0]);
        // Uniform (theta = 0) is roughly flat.
        let u = Zipf::new(10, 0.0);
        let mut ucounts = vec![0usize; 10];
        for _ in 0..20_000 {
            ucounts[u.sample(&mut r)] += 1;
        }
        assert!(
            ucounts.iter().all(|&c| c > 1_500 && c < 2_500),
            "{ucounts:?}"
        );
    }

    #[test]
    fn templates_produce_few_signatures() {
        let ix = PredicateIndex::new(IndexConfig::default());
        build_index(&ix, 500, Template::all(), 50, 7);
        assert_eq!(ix.num_signatures(), Template::all().len());
        assert_eq!(ix.num_entries(), 500);
    }

    #[test]
    fn tokens_are_reproducible() {
        assert_eq!(quote_tokens(10, 5, 42), quote_tokens(10, 5, 42));
        assert_ne!(quote_tokens(10, 5, 42), quote_tokens(10, 5, 43));
    }

    #[test]
    fn engine_with_alerts_matches_something() {
        let (tman, src) =
            engine_with_alerts(triggerman::Config::default(), 200, Template::all(), 20, 3);
        let rx = tman.subscribe("Matched");
        push_all(&tman, src, &quote_tokens(50, 20, 4));
        tman.run_until_quiescent().unwrap();
        assert!(tman.last_error().is_none(), "{:?}", tman.last_error());
        assert!(rx.try_iter().count() > 0);
    }
}
