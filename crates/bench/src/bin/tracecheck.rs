//! Validate Chrome trace-event JSON produced by the experiment harness.
//!
//! ```sh
//! TMAN_TRACE_DIR=target/traces cargo run -p tman-bench --bin experiments -- --quick e10
//! cargo run -p tman-bench --bin tracecheck              # checks $TMAN_TRACE_DIR
//! cargo run -p tman-bench --bin tracecheck -- a.json b.json
//! cargo run -p tman-bench --bin tracecheck -- --expect wire_send e13.json
//! ```
//!
//! The validator is the serde-free recursive-descent parser in
//! `tman-telemetry`, so this doubles as an end-to-end check that the
//! export round-trips without any JSON dependency. Exits non-zero when a
//! file fails to parse, when no files are found, or when every file is
//! empty (tracing never engaged).
//!
//! `--expect NAME` (repeatable) additionally requires that a span with
//! that name appears in at least one checked file. CI uses this over an
//! E13 wire trace to prove that trace propagation crossed the wire —
//! `wire_send` spans only exist when a client-minted trace id survived
//! decode and was adopted by the engine-side tracer.

use std::collections::BTreeSet;
use tman_telemetry::trace::validate_chrome_trace_names;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut expect: Vec<String> = Vec::new();
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--expect" {
            match it.next() {
                Some(name) => expect.push(name),
                None => {
                    eprintln!("tracecheck: --expect requires a span name");
                    std::process::exit(1);
                }
            }
        } else {
            paths.push(a);
        }
    }
    let files: Vec<std::path::PathBuf> = if paths.is_empty() {
        let dir = std::env::var("TMAN_TRACE_DIR").unwrap_or_else(|_| "target/traces".into());
        match std::fs::read_dir(&dir) {
            Ok(rd) => {
                let mut v: Vec<_> = rd
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|x| x == "json"))
                    .collect();
                v.sort();
                v
            }
            Err(e) => {
                eprintln!("tracecheck: cannot read {dir}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        paths.iter().map(std::path::PathBuf::from).collect()
    };
    if files.is_empty() {
        eprintln!("tracecheck: no trace files to check");
        std::process::exit(1);
    }
    let mut total = 0usize;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tracecheck: FAIL {}: {e}", path.display());
                failed = true;
                continue;
            }
        };
        match validate_chrome_trace_names(&text) {
            Ok((n, names)) => {
                println!("tracecheck: ok   {} ({n} events)", path.display());
                total += n;
                seen.extend(names);
            }
            Err(e) => {
                eprintln!("tracecheck: FAIL {}: {e}", path.display());
                failed = true;
            }
        }
    }
    for name in &expect {
        if !seen.contains(name) {
            eprintln!("tracecheck: FAIL expected span \"{name}\" in no file (saw: {seen:?})");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    if total == 0 {
        eprintln!("tracecheck: all files parsed but contain zero events — tracing never engaged");
        std::process::exit(1);
    }
    println!(
        "tracecheck: {} file(s), {total} events, all valid",
        files.len()
    );
}
