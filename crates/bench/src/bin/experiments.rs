//! The experiment harness: regenerates every series in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p tman-bench --bin experiments            # all, full size
//! cargo run --release -p tman-bench --bin experiments -- --quick # smaller sweeps
//! cargo run --release -p tman-bench --bin experiments -- e3 e9   # selected
//! ```

use rand::Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tman_bench::*;
use tman_common::{EventKind, UpdateDescriptor, Value};
use tman_predindex::{IndexConfig, OrgKind, PredicateIndex};
use tman_sql::Database;
use tman_telemetry::Registry;
use triggerman::{Config, NetworkKind, QueueMode, TriggerMan};

struct Opts {
    quick: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let opts = Opts { quick };
    type Experiment = fn(&Opts);
    let all: &[(&str, Experiment)] = &[
        ("e1", e1_scaling),
        ("e2", e2_cse),
        ("e3", e3_orgs),
        ("e4", e4_concurrency),
        ("e5", e5_cache),
        ("e6", e6_driver),
        ("e7", e7_create),
        ("e8", e8_networks),
        ("e9", e9_ranges),
        ("e10", e10_design),
        ("e11", e11_governor),
        ("e12", e12_partitions),
        ("e13", e13_wire),
        ("e14", e14_sharding),
        ("e15", e15_disjunctions),
    ];
    for (name, f) in all {
        if selected.is_empty() || selected.contains(name) {
            println!(
                "\n## {} {}\n",
                name.to_uppercase(),
                if quick { "(quick)" } else { "" }
            );
            f(&opts);
        }
    }
}

/// E1 — tokens/sec vs number of triggers: signature predicate index vs
/// naive ECA scan vs query-based (RPL/DIPS). Paper anchor: §1/§8, Figure 3.
fn e1_scaling(o: &Opts) {
    let sizes: &[usize] = if o.quick {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };
    let n_syms = 200;
    let mut table = Table::new(&[
        "triggers",
        "index tok/s",
        "eca tok/s",
        "query tok/s",
        "matches/tok",
        "index evals/tok",
        "eca evals/tok",
    ]);
    let mut metrics_json = String::new();
    for &n in sizes {
        // --- predicate index ---
        let registry = Arc::new(Registry::new());
        let mut ix = PredicateIndex::new(IndexConfig::default());
        ix.attach_telemetry(&registry);
        build_index(&ix, n, Template::all(), n_syms, 1);
        let tokens = quote_tokens(if o.quick { 2_000 } else { 5_000 }, n_syms, 2);
        let mut matches = 0usize;
        let (_, d_ix) = time_it(|| {
            for t in &tokens {
                ix.match_token(t, &mut |_| matches += 1).unwrap();
            }
        });
        let evals_per_tok = ix.stats().residual_tests.get() as f64 / tokens.len() as f64;
        let matches_per_tok = matches as f64 / tokens.len() as f64;

        // --- naive ECA ---
        let eca = tman_baseline::NaiveEca::new();
        let schema = quotes_schema();
        let mut r = rng(1);
        for i in 0..n {
            let t = Template::all()[i % Template::all().len()];
            eca.add_trigger(
                tman_common::TriggerId(i as u64),
                QUOTES,
                EventKind::Insert,
                "q",
                &schema,
                &t.condition(&mut r, n_syms),
            )
            .unwrap();
        }
        // The naive scan is O(n) per token: bound total work.
        let eca_tokens = (2_000_000 / n.max(1)).clamp(20, 2_000);
        let (_, d_eca) = time_it(|| {
            for t in tokens.iter().take(eca_tokens) {
                eca.match_token(t).unwrap();
            }
        });

        // --- query-based --- (bounded even harder; it re-parses per trigger)
        let qb_tokens = (200_000 / n.max(1)).clamp(5, 200);
        let db = Arc::new(Database::open_memory(512));
        let qb = tman_baseline::QueryBased::new(db);
        qb.register_source(QUOTES, &schema).unwrap();
        let mut r = rng(1);
        for i in 0..n {
            let t = Template::all()[i % Template::all().len()];
            let cond = t.condition(&mut r, n_syms).replace("q.", "");
            qb.add_trigger(
                tman_common::TriggerId(i as u64),
                QUOTES,
                EventKind::Insert,
                &cond,
            )
            .unwrap();
        }
        let (_, d_qb) = time_it(|| {
            for t in tokens.iter().take(qb_tokens) {
                qb.match_token(t).unwrap();
            }
        });

        table.row(vec![
            n.to_string(),
            human(rate(tokens.len(), d_ix)),
            human(rate(eca_tokens, d_eca)),
            human(rate(qb_tokens, d_qb)),
            format!("{matches_per_tok:.1}"),
            format!("{evals_per_tok:.1}"),
            n.to_string(),
        ]);
        metrics_json = registry.render_json();
    }
    table.print();
    dump_metrics("e1", &metrics_json);
}

/// E2 — Figure 4 ablation: normalized (CSE) vs denormalized constant sets.
fn e2_cse(o: &Opts) {
    let sizes: &[usize] = if o.quick {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };
    let mut table = Table::new(&[
        "triggers (same constant)",
        "norm bytes",
        "denorm bytes",
        "norm miss ns",
        "denorm miss ns",
    ]);
    let mut metrics_json = String::new();
    for &n in sizes {
        let registry = Arc::new(Registry::new());
        let mk = |normalized: bool| {
            let mut ix = PredicateIndex::new(IndexConfig {
                normalized,
                list_to_index: usize::MAX, // stay a list: the Figure-4 layouts
                ..Default::default()
            });
            ix.attach_telemetry(&registry);
            for i in 0..n {
                add_to_index(&ix, i as u64, "q.sym = 'HOT'", EventKind::Insert);
            }
            ix
        };
        let norm = mk(true);
        let denorm = mk(false);
        let miss = UpdateDescriptor::insert(
            QUOTES,
            tman_common::Tuple::new(vec![Value::str("COLD"), Value::Float(1.0), Value::Int(1)]),
        );
        let probes = 2_000;
        let (_, d_norm) = time_it(|| {
            for _ in 0..probes {
                norm.match_token(&miss, &mut |_| {}).unwrap();
            }
        });
        let (_, d_denorm) = time_it(|| {
            for _ in 0..probes {
                denorm.match_token(&miss, &mut |_| {}).unwrap();
            }
        });
        table.row(vec![
            n.to_string(),
            human_bytes(norm.memory_bytes()),
            human_bytes(denorm.memory_bytes()),
            format!("{:.0}", nanos_per(probes, d_norm)),
            format!("{:.0}", nanos_per(probes, d_denorm)),
        ]);
        metrics_json = registry.render_json();
    }
    table.print();
    dump_metrics("e2", &metrics_json);
}

/// E3 — §5.2: the four constant-set organizations across equivalence-class
/// sizes: probe latency, memory, page I/O.
fn e3_orgs(o: &Opts) {
    let sizes: &[usize] = if o.quick {
        &[10, 1_000, 10_000]
    } else {
        &[10, 100, 1_000, 10_000, 100_000]
    };
    let mut table = Table::new(&[
        "class size",
        "org",
        "probe ns",
        "memory",
        "pages read/probe",
    ]);
    let mut metrics_json = String::new();
    for &n in sizes {
        let registry = Arc::new(Registry::new());
        let db = Arc::new(Database::open_memory(1024));
        let mut ix = PredicateIndex::with_database(IndexConfig::default(), db.clone());
        ix.attach_telemetry(&registry);
        for i in 0..n {
            add_to_index(&ix, i as u64, &format!("q.vol = {i}"), EventKind::Insert);
        }
        let sig = ix.source(QUOTES).unwrap().signatures()[0].clone();
        let probes = if n >= 10_000 { 200 } else { 2_000 };
        let tokens = quote_tokens(probes, 4, 7);
        for kind in [
            OrgKind::MemList,
            OrgKind::MemIndex,
            OrgKind::DbTable,
            OrgKind::DbIndexed,
        ] {
            if kind == OrgKind::DbTable && n > 10_000 {
                // The full-scan org at 100k entries × probes is pointless
                // pain; report one decade less often.
                if n > 10_000 {
                    table.row(vec![
                        n.to_string(),
                        kind.as_str().into(),
                        "(skipped)".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    continue;
                }
            }
            sig.set_org(kind).unwrap();
            let reads0 = db.storage().pool().disk().stats().page_reads.get()
                + db.storage().pool().stats().pool_hits.get();
            let (_, d) = time_it(|| {
                for t in &tokens {
                    ix.match_token(t, &mut |_| {}).unwrap();
                }
            });
            let reads1 = db.storage().pool().disk().stats().page_reads.get()
                + db.storage().pool().stats().pool_hits.get();
            table.row(vec![
                n.to_string(),
                kind.as_str().into(),
                format!("{:.0}", nanos_per(probes, d)),
                human_bytes(sig.memory_bytes()),
                format!("{:.1}", (reads1 - reads0) as f64 / probes as f64),
            ]);
        }
        metrics_json = registry.render_json();
    }
    table.print();
    dump_metrics("e3", &metrics_json);
}

/// E4 — §6 / Figure 5: token-, condition-, and action-level concurrency.
fn e4_concurrency(o: &Opts) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "host parallelism: {cpus} CPU(s).{}",
        if cpus == 1 {
            " NOTE: with one CPU no speedup is possible; this experiment then \
             measures the *overhead* of the concurrency machinery (flat ≈1.0x = good)."
        } else {
            ""
        }
    );
    let threads: &[usize] = &[1, 2, 4, 8];
    let n_tokens = if o.quick { 10_000 } else { 40_000 };

    let mut metrics_json = String::new();

    // (a) token-level: P drivers drain a shared queue.
    let mut ta = Table::new(&["drivers", "tokens/s", "speedup"]);
    let mut base = 0.0;
    for &p in threads {
        let cfg = Config {
            num_cpus: Some(p),
            driver_period: Duration::from_micros(200),
            threshold: Duration::from_millis(20),
            ..Default::default()
        };
        let (tman, src) = engine_with_alerts(traced(cfg), 2_000, Template::all(), 100, 3);
        let tokens = quote_tokens(n_tokens, 100, 4);
        push_all(&tman, src, &tokens);
        let pool = tman.start_drivers();
        let t0 = Instant::now();
        while tman.queue_len() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let d = t0.elapsed();
        pool.stop();
        let r = rate(n_tokens, d);
        if base == 0.0 {
            base = r;
        }
        ta.row(vec![p.to_string(), human(r), format!("{:.2}x", r / base)]);
    }
    println!("(a) token-level concurrency");
    ta.print();

    // (b) condition-level: M same-condition triggers, partitioned sets.
    let m = if o.quick { 20_000 } else { 50_000 };
    let mut tb = Table::new(&["partitions x drivers", "tokens/s", "speedup"]);
    let mut base_b = 0.0;
    for &p in threads {
        let cfg = Config {
            num_cpus: Some(p),
            condition_partitions: p,
            // Gate fan-out at the engine's default so the bench and
            // production agree on when Figure-5 partitioning kicks in.
            partition_min: Config::default().partition_min,
            driver_period: Duration::from_micros(200),
            threshold: Duration::from_millis(20),
            ..Default::default()
        };
        let tman = TriggerMan::open_memory(traced(cfg)).unwrap();
        tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
            .unwrap();
        let src = tman.source("q").unwrap().id;
        // M rules with the same condition but different actions (§6's
        // partitioning example) — plus a residual so matching does real work.
        for i in 0..m {
            tman.execute_command(&format!(
                "create trigger c{i} from q when q.sym = 'HOT' and q.price > {} \
                 do raise event E{i}(q.price)",
                i % 997
            ))
            .unwrap();
        }
        let tokens: Vec<UpdateDescriptor> = (0..200)
            .map(|i| {
                UpdateDescriptor::insert(
                    src,
                    tman_common::Tuple::new(vec![
                        Value::str("HOT"),
                        Value::Float((i % 1000) as f64),
                        Value::Int(0),
                    ]),
                )
            })
            .collect();
        push_all(&tman, src, &tokens);
        let pool = tman.start_drivers();
        let t0 = Instant::now();
        while tman.queue_len() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let d = t0.elapsed();
        pool.stop();
        let r = rate(tokens.len(), d);
        if base_b == 0.0 {
            base_b = r;
        }
        tb.row(vec![
            format!("{p}x{p}"),
            human(r),
            format!("{:.2}x", r / base_b),
        ]);
    }
    println!("\n(b) condition-level concurrency (M = {m} same-condition triggers)");
    tb.print();

    // (c) rule-action concurrency: inline vs async actions with P drivers.
    let mut tc = Table::new(&["mode", "drivers", "actions/s"]);
    for (label, async_actions, p) in [
        ("inline", false, 1),
        ("inline", false, 4),
        ("async", true, 1),
        ("async", true, 4),
    ] {
        let cfg = Config {
            num_cpus: Some(p),
            async_actions,
            driver_period: Duration::from_micros(200),
            threshold: Duration::from_millis(20),
            ..Default::default()
        };
        let tman = TriggerMan::open_memory(traced(cfg)).unwrap();
        tman.run_sql("create table sink (v float)").unwrap();
        tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
            .unwrap();
        let src = tman.source("q").unwrap().id;
        for i in 0..50 {
            tman.execute_command(&format!(
                "create trigger act{i} from q when q.vol >= 0 \
                 do execSQL 'insert into sink values (:NEW.q.price)'"
            ))
            .unwrap();
        }
        let tokens = quote_tokens(if o.quick { 200 } else { 500 }, 10, 5);
        push_all(&tman, src, &tokens);
        let n_actions = tokens.len() * 50;
        let pool = tman.start_drivers();
        let t0 = Instant::now();
        while tman.queue_len() > 0 {
            std::thread::sleep(Duration::from_micros(500));
        }
        let d = t0.elapsed();
        pool.stop();
        tc.row(vec![label.into(), p.to_string(), human(rate(n_actions, d))]);
        metrics_json = tman.render_metrics_json();
        dump_trace("e4", &tman);
    }
    println!("\n(c) rule-action concurrency (50 actions per token, execSQL)");
    tc.print();
    dump_metrics("e4", &metrics_json);
}

/// E5 — §5.1: trigger-cache hit rate and throughput vs capacity under
/// Zipf-skewed trigger access.
fn e5_cache(o: &Opts) {
    let n_triggers = if o.quick { 20_000 } else { 50_000 };
    let caps: &[usize] = &[64, 1_024, 8_192, n_triggers];
    let mut table = Table::new(&["cache capacity", "hit rate", "tokens/s"]);
    let tokens = {
        let zipf = Zipf::new(n_triggers, 0.9);
        let mut r = rng(11);
        let n = if o.quick { 20_000 } else { 50_000 };
        (0..n)
            .map(|_| zipf.sample(&mut r) as i64)
            .collect::<Vec<_>>()
    };
    let mut metrics_json = String::new();
    for &cap in caps {
        let cfg = Config {
            trigger_cache_capacity: cap,
            ..Default::default()
        };
        let tman = TriggerMan::open_memory(traced(cfg)).unwrap();
        tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
            .unwrap();
        let src = tman.source("q").unwrap().id;
        for i in 0..n_triggers {
            tman.execute_command(&format!(
                "create trigger z{i} from q when q.vol = {i} do raise event Z(q.vol)"
            ))
            .unwrap();
        }
        for &k in &tokens {
            tman.push_token(UpdateDescriptor::insert(
                src,
                tman_common::Tuple::new(vec![Value::str("X"), Value::Float(0.0), Value::Int(k)]),
            ))
            .unwrap();
        }
        let (_, d) = time_it(|| tman.run_until_quiescent().unwrap());
        table.row(vec![
            cap.to_string(),
            format!("{:.3}", tman.trigger_cache().stats().hit_rate()),
            human(rate(tokens.len(), d)),
        ]);
        metrics_json = tman.render_metrics_json();
        dump_trace("e5", &tman);
    }
    table.print();
    dump_metrics("e5", &metrics_json);
}

/// E6 — §6: the driver loop. Burst drain time and idle-arrival latency vs
/// THRESHOLD and T; persistent vs volatile queue.
fn e6_driver(o: &Opts) {
    let burst = if o.quick { 5_000 } else { 20_000 };
    let mut metrics_json = String::new();
    let mut table = Table::new(&["THRESHOLD", "T", "burst drain tok/s", "idle latency (ms)"]);
    for (threshold_ms, t_ms) in [(250u64, 250u64), (50, 50), (10, 10), (250, 10), (10, 250)] {
        let cfg = Config {
            num_cpus: Some(2),
            threshold: Duration::from_millis(threshold_ms),
            driver_period: Duration::from_millis(t_ms),
            ..Default::default()
        };
        let (tman, src) = engine_with_alerts(traced(cfg), 1_000, Template::all(), 50, 21);
        let tokens = quote_tokens(burst, 50, 22);
        push_all(&tman, src, &tokens);
        let pool = tman.start_drivers();
        let t0 = Instant::now();
        while tman.queue_len() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let drain = t0.elapsed();
        // Idle latency: wait for drivers to go idle, then time a single
        // token to visibility.
        std::thread::sleep(Duration::from_millis(t_ms.min(300) + 20));
        let rx = tman.subscribe("Matched");
        let mut lat = Duration::ZERO;
        let probes = 5;
        for _ in 0..probes {
            std::thread::sleep(Duration::from_millis(t_ms.min(300)));
            let t0 = Instant::now();
            tman.push_token(UpdateDescriptor::insert(
                src,
                tman_common::Tuple::new(vec![Value::str("S1"), Value::Float(999.0), Value::Int(1)]),
            ))
            .unwrap();
            while rx.try_recv().is_err() {
                if t0.elapsed() > Duration::from_secs(5) {
                    break;
                }
                std::thread::yield_now();
            }
            lat += t0.elapsed();
        }
        pool.stop();
        table.row(vec![
            format!("{threshold_ms} ms"),
            format!("{t_ms} ms"),
            human(rate(burst, drain)),
            format!("{:.1}", lat.as_secs_f64() * 1000.0 / probes as f64),
        ]);
    }
    table.print();

    // Queue-mode comparison.
    let mut tq = Table::new(&["queue mode", "enqueue+drain tok/s"]);
    for (label, mode) in [
        ("volatile (memory)", QueueMode::Volatile),
        ("persistent (table)", QueueMode::Persistent),
    ] {
        let cfg = Config {
            queue_mode: mode,
            ..Default::default()
        };
        let (tman, src) = engine_with_alerts(traced(cfg), 500, Template::all(), 50, 23);
        let tokens = quote_tokens(if o.quick { 2_000 } else { 5_000 }, 50, 24);
        let (_, d) = time_it(|| {
            push_all(&tman, src, &tokens);
            tman.run_until_quiescent().unwrap();
        });
        tq.row(vec![label.into(), human(rate(tokens.len(), d))]);
        metrics_json = tman.render_metrics_json();
        dump_trace("e6", &tman);
    }
    println!("\nqueue modes (§3: persistent table vs main-memory queue)");
    tq.print();
    dump_metrics("e6", &metrics_json);
}

/// E7 — §5.1: create-trigger cost stays flat as the population grows
/// (signature reuse = one constant-table row).
fn e7_create(o: &Opts) {
    let total = if o.quick { 20_000 } else { 100_000 };
    let step = total / 5;
    let mut table = Table::new(&["existing triggers", "creates/s (repeat signature)"]);
    let tman = TriggerMan::open_memory(Config::default()).unwrap();
    tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
        .unwrap();
    let mut r = rng(31);
    let mut created = 0usize;
    while created < total {
        let (_, d) = time_it(|| {
            for _ in 0..step {
                let t = Template::all()[created % Template::all().len()];
                let cond = t.condition(&mut r, 500);
                tman.execute_command(&format!(
                    "create trigger n{created} from q when {cond} do raise event N(q.sym)"
                ))
                .unwrap();
                created += 1;
            }
        });
        table.row(vec![(created - step).to_string(), human(rate(step, d))]);
    }
    table.print();
    println!(
        "{} triggers → {} signatures, {} entries",
        created,
        tman.predicate_index().num_signatures(),
        tman.predicate_index().num_entries()
    );
    dump_metrics("e7", &tman.render_metrics_json());
}

/// E8 — §3/§4: discrimination networks on the real-estate join workload.
fn e8_networks(o: &Opts) {
    let n_sales = 200;
    let n_reps = 800;
    let n_houses = if o.quick { 1_000 } else { 3_000 };
    let mut metrics_json = String::new();
    let mut table = Table::new(&[
        "network",
        "house tokens/s",
        "stored tuples",
        "rep-churn tok/s",
    ]);
    for kind in [
        NetworkKind::ATreat,
        NetworkKind::Treat,
        NetworkKind::Rete,
        NetworkKind::Gator,
    ] {
        let cfg = Config {
            network: kind,
            ..Default::default()
        };
        let tman = TriggerMan::open_memory(traced(cfg)).unwrap();
        for (ddl, src) in [
            (
                "create table salesperson (spno int, name varchar(20))",
                "salesperson",
            ),
            (
                "create table house (hno int, price float, nno int)",
                "house",
            ),
            ("create table represents (spno int, nno int)", "represents"),
        ] {
            tman.run_sql(ddl).unwrap();
            tman.execute_command(&format!("define data source {src} from table {src}"))
                .unwrap();
        }
        let mut r = rng(41);
        for s in 0..n_sales {
            tman.run_sql(&format!("insert into salesperson values ({s}, 'P{s}')"))
                .unwrap();
        }
        for _ in 0..n_reps {
            tman.run_sql(&format!(
                "insert into represents values ({}, {})",
                r.gen_range(0..n_sales),
                r.gen_range(0..500)
            ))
            .unwrap();
        }
        tman.run_until_quiescent().unwrap();
        tman.execute_command(
            "create trigger watch on insert to house from salesperson s, house h, represents r \
             when s.name = 'P7' and s.spno = r.spno and r.nno = h.nno \
             do raise event W(h.hno)",
        )
        .unwrap();
        // House insert stream.
        let (_, d) = time_it(|| {
            for h in 0..n_houses {
                tman.run_sql(&format!(
                    "insert into house values ({h}, {}, {})",
                    r.gen_range(1.0..100.0),
                    r.gen_range(0..500)
                ))
                .unwrap();
            }
            tman.run_until_quiescent().unwrap();
        });
        let stored = tman
            .trigger_cache()
            .peek(tman_common::TriggerId(1))
            .map(|t| t.network.memory_tuples())
            .unwrap_or(0);
        // Represents churn (non-event tokens: memory maintenance only).
        let churn = if o.quick { 300 } else { 1_000 };
        let (_, d2) = time_it(|| {
            for _ in 0..churn {
                tman.run_sql(&format!(
                    "insert into represents values ({}, {})",
                    r.gen_range(0..n_sales),
                    r.gen_range(0..500)
                ))
                .unwrap();
                tman.run_until_quiescent().unwrap();
            }
        });
        table.row(vec![
            format!("{kind:?}"),
            human(rate(n_houses, d)),
            stored.to_string(),
            human(rate(churn, d2)),
        ]);
        metrics_json = tman.render_metrics_json();
        dump_trace("e8", &tman);
    }
    table.print();
    dump_metrics("e8", &metrics_json);
}

/// E9 — range-predicate indexing: interval index vs linear list as the
/// equivalence class grows (\[Hans96b\]; the paper's §9 future work).
fn e9_ranges(o: &Opts) {
    let sizes: &[usize] = if o.quick {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };
    let mut table = Table::new(&[
        "range triggers",
        "mem list ns/probe",
        "interval index ns/probe",
    ]);
    let mut metrics_json = String::new();
    for &n in sizes {
        let registry = Arc::new(Registry::new());
        let mut ix = PredicateIndex::new(IndexConfig {
            list_to_index: usize::MAX,
            ..Default::default()
        });
        ix.attach_telemetry(&registry);
        let mut r = rng(51);
        for i in 0..n {
            let lo = r.gen_range(0..100_000);
            add_to_index(
                &ix,
                i as u64,
                &format!("q.vol >= {lo} and q.vol < {}", lo + r.gen_range(1..500)),
                EventKind::Insert,
            );
        }
        let sig = ix.source(QUOTES).unwrap().signatures()[0].clone();
        let probes = if n >= 100_000 { 200 } else { 2_000 };
        let tokens = quote_tokens(probes, 4, 52);
        let mut timings = Vec::new();
        for kind in [OrgKind::MemList, OrgKind::MemIndex] {
            sig.set_org(kind).unwrap();
            let (_, d) = time_it(|| {
                for t in &tokens {
                    ix.match_token(t, &mut |_| {}).unwrap();
                }
            });
            timings.push(nanos_per(probes, d));
        }
        table.row(vec![
            n.to_string(),
            format!("{:.0}", timings[0]),
            format!("{:.0}", timings[1]),
        ]);
        metrics_json = registry.render_json();
    }
    table.print();
    dump_metrics("e9", &metrics_json);
}

/// E10 — §7 trigger application design: M triggers vs one parameterized
/// trigger joining a parameters table.
fn e10_design(o: &Opts) {
    let ms: &[usize] = if o.quick {
        &[100, 2_000]
    } else {
        &[100, 2_000, 20_000]
    };
    let mut table = Table::new(&["alert rules", "design", "setup time", "tokens/s"]);
    let mut metrics_json = String::new();
    for &m in ms {
        // Design A: M triggers (the scalable-trigger-system way). Size the
        // trigger cache to the population — at M=20k the default 16,384
        // capacity would otherwise measure cache thrash (that effect is
        // E5's subject), not the design tradeoff.
        {
            let cfg = Config {
                trigger_cache_capacity: m.max(16_384),
                ..Default::default()
            };
            let tman = TriggerMan::open_memory(traced(cfg)).unwrap();
            tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
                .unwrap();
            let src = tman.source("q").unwrap().id;
            let mut r = rng(61);
            let (_, setup) = time_it(|| {
                for i in 0..m {
                    tman.execute_command(&format!(
                        "create trigger d{i} from q \
                         when q.sym = 'S{}' and q.price > {} do raise event D(q.sym)",
                        r.gen_range(0..200),
                        r.gen_range(0..1000)
                    ))
                    .unwrap();
                }
            });
            let tokens = quote_tokens(if o.quick { 2_000 } else { 5_000 }, 200, 62);
            push_all(&tman, src, &tokens);
            let (_, d) = time_it(|| tman.run_until_quiescent().unwrap());
            table.row(vec![
                m.to_string(),
                "M triggers".into(),
                format!("{setup:.2?}"),
                human(rate(tokens.len(), d)),
            ]);
            dump_trace("e10", &tman);
        }
        // Design B: one trigger + a parameters table (§7's alternative).
        {
            let tman = TriggerMan::open_memory(Config::default()).unwrap();
            tman.run_sql("create table params (sym varchar(12), threshold float)")
                .unwrap();
            tman.execute_command("define data source params from table params")
                .unwrap();
            tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
                .unwrap();
            let src = tman.source("q").unwrap().id;
            let mut r = rng(61);
            let (_, setup) = time_it(|| {
                for _ in 0..m {
                    tman.run_sql(&format!(
                        "insert into params values ('S{}', {})",
                        r.gen_range(0..200),
                        r.gen_range(0..1000)
                    ))
                    .unwrap();
                }
                tman.run_until_quiescent().unwrap();
                tman.execute_command(
                    "create trigger para on insert to q from q, params p \
                     when q.sym = p.sym and q.price > p.threshold do raise event D(q.sym)",
                )
                .unwrap();
            });
            let n_tok = if o.quick { 200 } else { 500 }; // join scan is O(M) per token
            let tokens = quote_tokens(n_tok, 200, 62);
            push_all(&tman, src, &tokens);
            let (_, d) = time_it(|| tman.run_until_quiescent().unwrap());
            table.row(vec![
                m.to_string(),
                "1 trigger + table".into(),
                format!("{setup:.2?}"),
                human(rate(n_tok, d)),
            ]);
            metrics_json = tman.render_metrics_json();
        }
    }
    table.print();
    dump_metrics("e10", &metrics_json);
}

/// E11 — the adaptive organization governor vs hand-tuned static
/// configurations on the E1 scale workload. The governor starts every
/// class as a list (no insert-time promotion), then converges during a
/// warmup of probe traffic interleaved with governor passes; the measured
/// phase should match the best static choice.
fn e11_governor(o: &Opts) {
    let sizes: &[usize] = if o.quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let n_syms = 200;
    let mut table = Table::new(&["triggers", "config", "tok/s", "memory", "moves"]);
    let mut metrics_json = String::new();
    for &n in sizes {
        let static_cfgs = [
            (
                "static lists",
                IndexConfig {
                    list_to_index: usize::MAX,
                    ..Default::default()
                },
            ),
            (
                "static index-all",
                IndexConfig {
                    list_to_index: 0,
                    ..Default::default()
                },
            ),
            ("static default", IndexConfig::default()),
            (
                "adaptive",
                IndexConfig {
                    adaptive: true,
                    ..Default::default()
                },
            ),
        ];
        for (name, cfg) in static_cfgs {
            let adaptive = cfg.adaptive;
            let policy = tman_predindex::GovernorPolicy::from_config(&cfg);
            let registry = Arc::new(Registry::new());
            let db = Arc::new(Database::open_memory(1024));
            let mut ix = PredicateIndex::with_database(cfg, db);
            ix.attach_telemetry(&registry);
            build_index(&ix, n, Template::all(), n_syms, 1);
            let probes = if o.quick { 2_000 } else { 5_000 };
            let tokens = quote_tokens(probes, n_syms, 2);
            let mut moves = 0usize;
            // Every config gets the same warmup probe traffic; the
            // adaptive one additionally interleaves governor passes, as
            // the engine's driver maintenance path would run them.
            let warm = quote_tokens(probes / 2, n_syms, 3);
            for chunk in warm.chunks((warm.len() / 4).max(1)) {
                for t in chunk {
                    ix.match_token(t, &mut |_| {}).unwrap();
                }
                if adaptive {
                    moves += ix.governor_pass(&policy).migrations.len();
                }
            }
            let (_, d) = time_it(|| {
                for t in &tokens {
                    ix.match_token(t, &mut |_| {}).unwrap();
                }
            });
            table.row(vec![
                n.to_string(),
                name.into(),
                human(rate(probes, d)),
                human_bytes(ix.memory_bytes()),
                moves.to_string(),
            ]);
            metrics_json = registry.render_json();
        }
    }
    table.print();
    dump_metrics("e11", &metrics_json);
}

/// E12 — adaptive vs static condition-partition fan-out on a skewed
/// hot-signature workload: one equivalence class of M same-condition
/// triggers takes every token (§6's partitioning example). Static rows
/// force the Figure-5 fan-out unconditionally; the adaptive row lets the
/// partition controller pick a per-signature fan-out from observed driver
/// utilization (and disengage when fanning out is pure overhead — on a
/// single-CPU host the right answer is fan-out 1, so adaptive should track
/// the best static row while the widest static row pays task overhead).
/// Paper anchor: §6, Figure 5.
fn e12_partitions(o: &Opts) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cpus} CPU(s).");
    let m = if o.quick { 10_000 } else { 30_000 };
    let n_tokens = 200;
    let statics: &[usize] = &[1, 2, 4, 8];

    let mut table = Table::new(&["config", "tokens/s", "speedup"]);
    let mut metrics_json = String::new();
    let mut rates: Vec<(String, f64)> = Vec::new();
    let mut base = 0.0;
    let mut partition_report = String::new();

    let labels_cfgs: Vec<(String, Config)> = statics
        .iter()
        .map(|&p| {
            (
                format!("static p={p}"),
                Config {
                    condition_partitions: p,
                    partition_min: Config::default().partition_min,
                    driver_period: Duration::from_micros(200),
                    threshold: Duration::from_millis(20),
                    ..Default::default()
                },
            )
        })
        .chain(std::iter::once((
            "adaptive".to_string(),
            Config {
                partitioning: triggerman::Partitioning::Adaptive,
                partition_min: Config::default().partition_min,
                driver_period: Duration::from_micros(200),
                threshold: Duration::from_millis(20),
                // Let controller passes run every maintenance visit.
                governor_period: Duration::from_millis(1),
                ..Default::default()
            },
        )))
        .collect();

    for (label, cfg) in labels_cfgs {
        let adaptive = label == "adaptive";
        let tman = TriggerMan::open_memory(traced(cfg)).unwrap();
        tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
            .unwrap();
        let src = tman.source("q").unwrap().id;
        for i in 0..m {
            tman.execute_command(&format!(
                "create trigger c{i} from q when q.sym = 'HOT' and q.price > {} \
                 do raise event E{i}(q.price)",
                i % 997
            ))
            .unwrap();
        }
        let tokens: Vec<UpdateDescriptor> = (0..n_tokens)
            .map(|i| {
                UpdateDescriptor::insert(
                    src,
                    tman_common::Tuple::new(vec![
                        Value::str("HOT"),
                        Value::Float((i % 1000) as f64),
                        Value::Int(0),
                    ]),
                )
            })
            .collect();
        push_all(&tman, src, &tokens);
        let pool = tman.start_drivers();
        let t0 = Instant::now();
        while tman.queue_len() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let d = t0.elapsed();
        if adaptive {
            // Give the drained drivers a few maintenance visits so the
            // partition controller demonstrably ran.
            std::thread::sleep(Duration::from_millis(10));
        }
        pool.stop();
        let r = rate(n_tokens, d);
        if base == 0.0 {
            base = r;
        }
        table.row(vec![label.clone(), human(r), format!("{:.2}x", r / base)]);
        rates.push((label, r));
        if adaptive {
            partition_report = tman
                .metrics_snapshot()
                .format(Some("drivers"))
                .unwrap_or_default();
            metrics_json = tman.render_metrics_json();
        }
    }
    table.print();

    let static_rates: Vec<f64> = rates
        .iter()
        .filter(|(l, _)| l.starts_with("static"))
        .map(|&(_, r)| r)
        .collect();
    let adaptive_rate = rates.last().map(|&(_, r)| r).unwrap_or(0.0);
    let best = static_rates.iter().cloned().fold(0.0_f64, f64::max);
    let worst = static_rates.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "adaptive = {:.2}x best static, {:.2}x worst static",
        adaptive_rate / best.max(1e-9),
        adaptive_rate / worst.max(1e-9)
    );
    println!("\nadaptive run, `show stats drivers`:");
    print!("{partition_report}");
    dump_metrics("e12", &metrics_json);
}

/// E13 — wire-tier ingestion: many loopback TCP source connections stream
/// tokens through `tman-wire` into the update queue. The server
/// group-commits each poll pass (one durability barrier amortized across
/// every connection that contributed), so the persistent queue pays far
/// less than one fsync per token while a remote subscriber concurrently
/// drains the resulting firings. Paper anchor: §3's process architecture.
fn e13_wire(o: &Opts) {
    use tman_wire::{RemoteClient, WireServer};

    let conns = if o.quick { 16 } else { 64 };
    let per_conn = if o.quick { 500 } else { 2_000 };
    let total = conns * per_conn;
    let mut table = Table::new(&[
        "queue",
        "conns",
        "tokens/s",
        "syncs/token",
        "spikes",
        "ingest→fire p50/p99",
        "fire→ack p50/p99",
    ]);
    let mut metrics_json = String::new();

    for persistent in [false, true] {
        let path = std::env::temp_dir().join(format!("tman_e13_{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = traced(Config {
            queue_mode: if persistent {
                QueueMode::Persistent
            } else {
                QueueMode::Volatile
            },
            ..Default::default()
        });
        let tman = if persistent {
            TriggerMan::open_file(&path, cfg).unwrap()
        } else {
            TriggerMan::open_memory(cfg).unwrap()
        };
        tman.execute_command("define data source quotes (symbol varchar(12), price float)")
            .unwrap();
        tman.execute_command(
            "create trigger spike from quotes when quotes.price > 550 \
             do raise event Spike(quotes.symbol, quotes.price)",
        )
        .unwrap();
        let server = WireServer::start(tman.clone(), "127.0.0.1:0").unwrap();
        let drivers = tman.start_drivers();
        let addr = server.local_addr().to_string();
        let syncs = tman
            .metrics_registry()
            .counter("tman_disk_syncs_total", &[]);
        let sync_base = syncs.get();

        // A dashboard drains firings (and acks) while ingestion runs.
        let dash_addr = addr.clone();
        let dashboard = std::thread::spawn(move || {
            let mut sub = RemoteClient::new(dash_addr)
                .subscribe("e13", "Spike", 0)
                .unwrap();
            let mut seen = 0u64;
            let mut idle = 0u32;
            while idle < 10 {
                match sub.next(Duration::from_millis(100)).unwrap() {
                    Some((seq, _)) => {
                        idle = 0;
                        seen += 1;
                        if seen % 256 == 0 {
                            sub.ack(seq).unwrap();
                        }
                    }
                    None => idle += 1,
                }
            }
            seen
        });

        let t0 = Instant::now();
        let feeders: Vec<_> = (0..conns)
            .map(|c| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let client = RemoteClient::new(addr);
                    let mut src = client.data_source("quotes").unwrap();
                    for i in 0..per_conn {
                        src.insert(vec![
                            Value::str("HOT"),
                            Value::Float(((c * per_conn + i) % 600) as f64),
                        ])
                        .unwrap();
                        if i % 64 == 63 {
                            src.flush().unwrap();
                        }
                    }
                    src.sync().unwrap();
                    src.close().unwrap();
                })
            })
            .collect();
        for f in feeders {
            f.join().unwrap();
        }
        let d = t0.elapsed();

        while tman.queue_len() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let spikes = dashboard.join().unwrap();
        drivers.stop();
        let spent = syncs.get() - sync_base;
        let label = if persistent { "persistent" } else { "volatile" };
        // End-to-end SLIs measured from the v2 wire stamps: client flush
        // wall clock → delivery-log append, and append → subscriber ack.
        let wire = tman.metrics_snapshot().wire;
        table.row(vec![
            label.to_string(),
            conns.to_string(),
            human(rate(total, d)),
            format!("{:.4}", spent as f64 / total as f64),
            spikes.to_string(),
            format!(
                "{} / {}",
                human_ns(wire.ingest_to_fire_ns.p50),
                human_ns(wire.ingest_to_fire_ns.p99)
            ),
            format!(
                "{} / {}",
                human_ns(wire.fire_to_ack_ns.p50),
                human_ns(wire.fire_to_ack_ns.p99)
            ),
        ]);
        if persistent {
            metrics_json = tman.render_metrics_json();
            dump_trace("e13", &tman);
        }
        drop(server);
        let _ = std::fs::remove_file(&path);
    }
    table.print();
    println!("{total} tokens per row; group commit amortizes the durability barrier.");
    dump_metrics("e13", &metrics_json);
}

/// E14 — sharded engine with batched token drain, on the persistent
/// queue. The seed drain pulled one token per pass (a full queue-table
/// scan each) and acknowledged it alone; the batched drain pulls K tokens
/// per scan, probes them sort-merged, and folds all their acks into one
/// group-commit barrier. Shards bound cross-driver contention; on a
/// single-CPU host they cannot add core-scaling, so the speedup shown is
/// the per-token overhead the batch amortizes away (on a multi-core host
/// the shard dimension multiplies on top). Paper anchor: §6's concurrent
/// processing architecture.
fn e14_sharding(o: &Opts) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cpus} CPU(s).");
    let n_tokens = if o.quick { 2_000 } else { 8_000 };
    let n_triggers = 500;
    let mut table = Table::new(&[
        "shards x batch",
        "tokens/s",
        "speedup",
        "ack barriers",
        "steals",
    ]);
    let mut base = 0.0;
    let mut metrics_json = String::new();
    let mut shard_report = String::new();
    for (shards, batch) in [(1usize, 1usize), (1, 256), (8, 1), (8, 256)] {
        let path = std::env::temp_dir().join(format!(
            "tman_e14_{shards}_{batch}_{}.db",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let cfg = Config {
            queue_mode: QueueMode::Persistent,
            shards: Some(shards),
            drain_batch: batch,
            num_cpus: Some(shards),
            driver_period: Duration::from_micros(200),
            threshold: Duration::from_millis(20),
            ..Default::default()
        };
        let tman = TriggerMan::open_file(&path, cfg).unwrap();
        tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
            .unwrap();
        let src = tman.source("q").unwrap().id;
        let mut r = rng(17);
        for i in 0..n_triggers {
            let t = Template::all()[i % Template::all().len()];
            let cond = t.condition(&mut r, 100);
            tman.execute_command(&format!(
                "create trigger a{i} from q when {cond} do raise event Matched(q.sym)"
            ))
            .unwrap();
        }
        let tokens = quote_tokens(n_tokens, 100, 4);
        push_all(&tman, src, &tokens);
        let pool = tman.start_drivers();
        let t0 = Instant::now();
        while tman.queue_len() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let d = t0.elapsed();
        pool.stop();
        let m = tman.metrics_snapshot();
        let steals: u64 = m.driver.shards.iter().map(|s| s.steals).sum();
        let rate_ = rate(n_tokens, d);
        if base == 0.0 {
            base = rate_;
        }
        table.row(vec![
            format!("{shards}x{batch}"),
            human(rate_),
            format!("{:.2}x", rate_ / base),
            tman.queue_wm_flushes().to_string(),
            steals.to_string(),
        ]);
        if (shards, batch) == (8, 256) {
            metrics_json = tman.render_metrics_json();
            if let Ok(triggerman::CommandOutput::Stats(s)) =
                tman.execute_command("show stats drivers")
            {
                shard_report = s;
            }
        }
        drop(tman);
        let _ = std::fs::remove_file(&path);
        let mut wal = path.into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
    }
    println!("(a) persistent-queue drain: per-token (seed) vs sharded batch");
    table.print();
    println!("\n(b) `show stats drivers` for the 8x256 run:");
    println!("{shard_report}");
    dump_metrics("e14", &metrics_json);
}

/// E15 — indexed disjunctions (tagged execution) vs residual-scan OR
/// triggers on a Zipf-skewed OR workload. With tagging off, an OR
/// condition stays one entry whose whole disjunction is a residual test
/// in an unindexable class — every token evaluates every OR trigger, so
/// per-token cost is O(population). With tagging on, each selectable
/// disjunct registers as its own indexable entry (equality/range classes;
/// a shared per-trigger tag claim dedupes multi-arm matches), so
/// per-token cost tracks the match count instead. Paper anchor: §5's
/// predicate decomposition, extended to disjunctions.
fn e15_disjunctions(o: &Opts) {
    let sizes: &[usize] = if o.quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    let n_syms = 200;
    let mut table = Table::new(&[
        "OR triggers",
        "config",
        "tokens/s",
        "resid evals/tok",
        "dedup hits",
        "fires/tok",
    ]);
    let mut metrics_json = String::new();
    for &m in sizes {
        for tagged in [false, true] {
            let mut cfg = Config::default();
            cfg.index.tagged_disjunctions = tagged;
            let tman = TriggerMan::open_memory(cfg).unwrap();
            tman.execute_command("define data source q (sym varchar(12), price float, vol int)")
                .unwrap();
            let src = tman.source("q").unwrap().id;
            // Zipf arms: hot symbols appear in many triggers' disjuncts,
            // so multi-arm matches (the tag-dedup path) are common.
            let zipf = Zipf::new(n_syms, 0.9);
            let mut r = rng(71);
            for i in 0..m {
                let a = zipf.sample(&mut r);
                let b = zipf.sample(&mut r);
                tman.execute_command(&format!(
                    "create trigger o{i} from q \
                     when q.sym = 'S{a}' or q.sym = 'S{b}' or q.vol = {} \
                     do raise event O(q.sym)",
                    r.gen_range(0..100_000)
                ))
                .unwrap();
            }
            // The residual scan is O(m) per token: bound its stream the
            // way E1 bounds the naive ECA baseline.
            let n_tok = if tagged {
                if o.quick {
                    2_000
                } else {
                    5_000
                }
            } else {
                (2_000_000 / m.max(1)).clamp(50, 2_000)
            };
            let tokens: Vec<UpdateDescriptor> = {
                let mut tr = rng(72);
                (0..n_tok)
                    .map(|_| {
                        UpdateDescriptor::insert(
                            src,
                            tman_common::Tuple::new(vec![
                                Value::str(format!("S{}", zipf.sample(&mut tr))),
                                Value::Float(tr.gen_range(0.0..1000.0)),
                                Value::Int(tr.gen_range(0..100_000)),
                            ]),
                        )
                    })
                    .collect()
            };
            let rx = tman.subscribe("O");
            push_all(&tman, src, &tokens);
            let resid0 = tman.predicate_index().stats().residual_tests.get();
            let (_, d) = time_it(|| tman.run_until_quiescent().unwrap());
            let resid = tman.predicate_index().stats().residual_tests.get() - resid0;
            let fires = rx.try_iter().count();
            table.row(vec![
                m.to_string(),
                if tagged {
                    format!("tagged ({} entries)", tman.tagged_entries())
                } else {
                    "residual scan".into()
                },
                human(rate(n_tok, d)),
                format!("{:.1}", resid as f64 / n_tok as f64),
                tman.tag_dedup_hits().to_string(),
                format!("{:.2}", fires as f64 / n_tok as f64),
            ]);
            if tagged {
                metrics_json = tman.render_metrics_json();
            }
        }
    }
    table.print();
    dump_metrics("e15", &metrics_json);
}
