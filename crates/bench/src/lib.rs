//! `tman-bench` — workload generators and measurement helpers shared by
//! the Criterion benches and the `experiments` binary (see EXPERIMENTS.md
//! for the experiment index E1–E15).

pub mod workload;

pub use workload::*;

use std::time::{Duration, Instant};

/// Write one experiment's metrics snapshot as JSON, to
/// `$TMAN_METRICS_DIR/{experiment}.json` (default `target/metrics/`), so
/// runs can be diffed and the engine-internal numbers behind a table
/// (probe counts, cache hit rates, queue waits) survive alongside it.
pub fn dump_metrics(experiment: &str, json: &str) {
    let dir = std::env::var("TMAN_METRICS_DIR").unwrap_or_else(|_| "target/metrics".into());
    let dir = std::path::Path::new(&dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("metrics: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{experiment}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => println!("metrics snapshot → {}", path.display()),
        Err(e) => eprintln!("metrics: cannot write {}: {e}", path.display()),
    }
}

/// When `TMAN_TRACE_DIR` is set, enable per-token tracing on `cfg` so the
/// experiment emits a Chrome trace (see [`dump_trace`]); identity
/// otherwise. Sampling keeps the flight-recorder overhead negligible while
/// still retaining every slow token.
pub fn traced(mut cfg: triggerman::Config) -> triggerman::Config {
    if std::env::var_os("TMAN_TRACE_DIR").is_some() {
        cfg.tracing = triggerman::TracingMode::Sampled(97);
    }
    cfg
}

/// Write one experiment's retained trace spans as Chrome trace-event JSON
/// to `$TMAN_TRACE_DIR/{experiment}.json` (loadable in Perfetto /
/// `chrome://tracing`). No-op when the variable is unset, so default runs
/// pay nothing.
pub fn dump_trace(experiment: &str, tman: &triggerman::TriggerMan) {
    let Ok(dir) = std::env::var("TMAN_TRACE_DIR") else {
        return;
    };
    let dir = std::path::Path::new(&dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("trace: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{experiment}.json"));
    match std::fs::write(&path, tman.render_chrome_trace()) {
        Ok(()) => println!("chrome trace → {}", path.display()),
        Err(e) => eprintln!("trace: cannot write {}: {e}", path.display()),
    }
}

/// Time one closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Ops/second for `n` operations over `d`.
pub fn rate(n: usize, d: Duration) -> f64 {
    n as f64 / d.as_secs_f64().max(1e-12)
}

/// Nanoseconds per operation.
pub fn nanos_per(n: usize, d: Duration) -> f64 {
    d.as_nanos() as f64 / n.max(1) as f64
}

/// Render a markdown table (used by the experiments binary so output can be
/// pasted into EXPERIMENTS.md).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Print as markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            println!("{s}");
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep);
        for row in &self.rows {
            line(row);
        }
    }
}

/// Human-friendly numbers (`12.3k`, `4.56M`).
pub fn human(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else if x >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

/// Human-friendly durations from nanoseconds (`850ns`, `12.4µs`, `3.1ms`).
pub fn human_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Human-friendly byte counts.
pub fn human_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}
