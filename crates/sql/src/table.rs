//! Tables: heap rows plus maintained secondary indexes.

use parking_lot::RwLock;
use std::sync::Arc;
use tman_common::stats::Counter;
use tman_common::{Result, Schema, TmanError, Tuple, Value};
use tman_storage::keyenc::encode_key;
use tman_storage::{BTree, HeapFile, RecordId};

/// A secondary index: a B+tree keyed on the keyenc encoding of a column
/// subset, valued with packed record ids.
pub struct Index {
    name: String,
    cols: Vec<usize>,
    tree: BTree,
}

impl Index {
    /// Wrap an existing tree.
    pub fn new(name: String, cols: Vec<usize>, tree: BTree) -> Index {
        Index { name, cols, tree }
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed column ordinals, in key order.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The underlying tree.
    pub fn tree(&self) -> &BTree {
        &self.tree
    }

    fn key_of(&self, row: &Tuple) -> Vec<u8> {
        let vals: Vec<Value> = self.cols.iter().map(|&c| row.get(c).clone()).collect();
        encode_key(&vals)
    }

    fn insert_row(&self, row: &Tuple, rid: RecordId) -> Result<()> {
        self.tree.insert(&self.key_of(row), rid.to_u64())
    }

    fn delete_row(&self, row: &Tuple, rid: RecordId) -> Result<()> {
        self.tree.delete(&self.key_of(row), rid.to_u64())?;
        Ok(())
    }
}

/// Per-table access counters (the experiments report scans vs probes).
#[derive(Debug, Default)]
pub struct TableStats {
    /// Rows visited by full scans.
    pub rows_scanned: Counter,
    /// Index point/range probes.
    pub index_probes: Counter,
}

/// A named, schema'd collection of rows.
pub struct Table {
    name: String,
    schema: Schema,
    heap: HeapFile,
    indexes: RwLock<Vec<Arc<Index>>>,
    stats: TableStats,
}

impl Table {
    /// Wrap a heap as a table.
    pub fn new(name: String, schema: Schema, heap: HeapFile) -> Table {
        Table {
            name,
            schema,
            heap,
            indexes: RwLock::new(Vec::new()),
            stats: TableStats::default(),
        }
    }

    /// Table name (original case).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Access counters.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Attached indexes.
    pub fn indexes(&self) -> Vec<Arc<Index>> {
        self.indexes.read().clone()
    }

    /// Index by name.
    pub fn index(&self, name: &str) -> Option<Arc<Index>> {
        self.indexes
            .read()
            .iter()
            .find(|i| i.name.eq_ignore_ascii_case(name))
            .cloned()
    }

    /// Register an index handle (already backfilled / loaded).
    pub fn attach_index(&self, idx: Arc<Index>) {
        self.indexes.write().push(idx);
    }

    /// Populate a fresh index from existing rows.
    pub fn backfill_index(&self, idx: &Index) -> Result<()> {
        self.heap.scan(|rid, rec| {
            let row = Tuple::decode(rec)?;
            idx.insert_row(&row, rid)?;
            Ok(true)
        })
    }

    /// Insert a row (values coerced against the schema). Returns its rid.
    pub fn insert(&self, values: Vec<Value>) -> Result<RecordId> {
        let row = Tuple::new(self.schema.coerce_row(values)?);
        let rid = self.heap.insert(&row.encode())?;
        for idx in self.indexes.read().iter() {
            idx.insert_row(&row, rid)?;
        }
        Ok(rid)
    }

    /// Fetch a row.
    pub fn get(&self, rid: RecordId) -> Result<Tuple> {
        Tuple::decode(&self.heap.get(rid)?)
    }

    /// Delete a row, returning its old value.
    pub fn delete(&self, rid: RecordId) -> Result<Tuple> {
        let row = self.get(rid)?;
        self.heap.delete(rid)?;
        for idx in self.indexes.read().iter() {
            idx.delete_row(&row, rid)?;
        }
        Ok(row)
    }

    /// Replace a row, returning `(old, new_rid)` (the rid changes only if
    /// the row had to move pages).
    pub fn update(&self, rid: RecordId, values: Vec<Value>) -> Result<(Tuple, RecordId)> {
        let old = self.get(rid)?;
        let new_row = Tuple::new(self.schema.coerce_row(values)?);
        let new_rid = self.heap.update(rid, &new_row.encode())?;
        for idx in self.indexes.read().iter() {
            idx.delete_row(&old, rid)?;
            idx.insert_row(&new_row, new_rid)?;
        }
        Ok((old, new_rid))
    }

    /// Visit every row; `f` returns false to stop.
    pub fn scan(&self, mut f: impl FnMut(RecordId, &Tuple) -> Result<bool>) -> Result<()> {
        self.heap.scan(|rid, rec| {
            self.stats.rows_scanned.bump();
            let row = Tuple::decode(rec)?;
            f(rid, &row)
        })
    }

    /// Materialize all rows.
    pub fn scan_all(&self) -> Result<Vec<(RecordId, Tuple)>> {
        let mut out = Vec::new();
        self.scan(|rid, row| {
            out.push((rid, row.clone()));
            Ok(true)
        })?;
        Ok(out)
    }

    /// Number of rows.
    pub fn count(&self) -> Result<usize> {
        let mut n = 0;
        self.heap.scan(|_, _| {
            n += 1;
            Ok(true)
        })?;
        Ok(n)
    }

    /// Point lookup on a named index: rows whose indexed columns equal
    /// `key` (a full-key match when `key` covers all index columns, a
    /// prefix match otherwise).
    pub fn index_lookup(&self, index: &str, key: &[Value]) -> Result<Vec<(RecordId, Tuple)>> {
        let idx = self
            .index(index)
            .ok_or_else(|| TmanError::NotFound(format!("index '{index}'")))?;
        self.index_prefix_lookup(&idx, key)
    }

    /// Prefix lookup against a specific index handle.
    pub fn index_prefix_lookup(
        &self,
        idx: &Index,
        key: &[Value],
    ) -> Result<Vec<(RecordId, Tuple)>> {
        if key.len() > idx.cols.len() {
            return Err(TmanError::Invalid(format!(
                "key of {} values for {}-column index",
                key.len(),
                idx.cols.len()
            )));
        }
        self.stats.index_probes.bump();
        let prefix = encode_key(key);
        let hi = tman_storage::keyenc::prefix_upper_bound(&prefix);
        let mut rids = Vec::new();
        idx.tree.scan_range(&prefix, &hi, |_, v| {
            rids.push(RecordId::from_u64(v));
            Ok(true)
        })?;
        rids.into_iter()
            .map(|rid| Ok((rid, self.get(rid)?)))
            .collect()
    }

    /// Range lookup `lo <[=] key <[=] hi` on a single-column prefix of an
    /// index. `None` bounds are open.
    pub fn index_range_lookup(
        &self,
        idx: &Index,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Result<Vec<(RecordId, Tuple)>> {
        self.stats.index_probes.bump();
        let lo_key = match lo {
            Some((v, _)) => encode_key(std::slice::from_ref(v)),
            None => Vec::new(),
        };
        let hi_key = match hi {
            Some((v, _)) => {
                let k = encode_key(std::slice::from_ref(v));
                // Upper bound must include composite keys extending `v`
                // when inclusive.
                tman_storage::keyenc::prefix_upper_bound(&k)
            }
            None => vec![0xFF; 16],
        };
        let mut rids = Vec::new();
        idx.tree.scan_range(&lo_key, &hi_key, |_, v| {
            rids.push(RecordId::from_u64(v));
            Ok(true)
        })?;
        // The byte range over-approximates at both ends (exclusive bounds,
        // lossy f64 keys); re-check against the real row values.
        let col = idx.cols[0];
        let mut out = Vec::new();
        for rid in rids {
            let row = self.get(rid)?;
            let v = row.get(col);
            let lo_ok = match lo {
                None => true,
                Some((b, true)) => v >= b,
                Some((b, false)) => v > b,
            };
            let hi_ok = match hi {
                None => true,
                Some((b, true)) => v <= b,
                Some((b, false)) => v < b,
            };
            if lo_ok && hi_ok {
                out.push((rid, row));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use tman_common::DataType;
    use tman_storage::{BufferPool, DiskManager};

    fn table_with_index() -> (Table, StdArc<Index>) {
        let pool = StdArc::new(BufferPool::new(
            StdArc::new(DiskManager::open_memory()),
            128,
        ));
        let heap = HeapFile::create(pool.clone()).unwrap();
        let schema = Schema::from_pairs(&[
            ("name", DataType::Varchar(32)),
            ("salary", DataType::Float),
            ("dept", DataType::Int),
        ]);
        let t = Table::new("emp".into(), schema, heap);
        let tree = BTree::create(pool).unwrap();
        let idx = StdArc::new(Index::new("emp_dept".into(), vec![2], tree));
        t.attach_index(idx.clone());
        (t, idx)
    }

    fn row(name: &str, sal: f64, dept: i64) -> Vec<Value> {
        vec![Value::str(name), Value::Float(sal), Value::Int(dept)]
    }

    #[test]
    fn crud_with_index_maintenance() {
        let (t, _) = table_with_index();
        let r1 = t.insert(row("Bob", 80000.0, 7)).unwrap();
        let _r2 = t.insert(row("Alice", 90000.0, 7)).unwrap();
        let _r3 = t.insert(row("Eve", 50000.0, 3)).unwrap();

        assert_eq!(
            t.index_lookup("emp_dept", &[Value::Int(7)]).unwrap().len(),
            2
        );
        assert_eq!(
            t.index_lookup("emp_dept", &[Value::Int(3)]).unwrap().len(),
            1
        );

        // Update moves Bob to dept 3.
        t.update(r1, row("Bob", 80000.0, 3)).unwrap();
        assert_eq!(
            t.index_lookup("emp_dept", &[Value::Int(7)]).unwrap().len(),
            1
        );
        assert_eq!(
            t.index_lookup("emp_dept", &[Value::Int(3)]).unwrap().len(),
            2
        );

        // Delete Bob.
        let hits = t.index_lookup("emp_dept", &[Value::Int(3)]).unwrap();
        let bob = hits
            .iter()
            .find(|(_, r)| r.get(0) == &Value::str("Bob"))
            .unwrap()
            .0;
        t.delete(bob).unwrap();
        assert_eq!(
            t.index_lookup("emp_dept", &[Value::Int(3)]).unwrap().len(),
            1
        );
        assert_eq!(t.count().unwrap(), 2);
    }

    #[test]
    fn schema_coercion_on_insert() {
        let (t, _) = table_with_index();
        // Int salary coerces to float.
        let rid = t
            .insert(vec![Value::str("X"), Value::Int(100), Value::Int(1)])
            .unwrap();
        assert_eq!(t.get(rid).unwrap().get(1), &Value::Float(100.0));
        // Wrong arity / type rejected.
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert!(t
            .insert(vec![Value::Int(5), Value::Float(1.0), Value::Int(1)])
            .is_err());
    }

    #[test]
    fn range_lookup_bounds() {
        let (t, idx) = table_with_index();
        for d in 0..20 {
            t.insert(row(&format!("p{d}"), 1000.0 * d as f64, d))
                .unwrap();
        }
        let got = t
            .index_range_lookup(
                &idx,
                Some((&Value::Int(5), true)),
                Some((&Value::Int(8), false)),
            )
            .unwrap();
        let mut depts: Vec<i64> = got
            .iter()
            .map(|(_, r)| r.get(2).as_i64().unwrap())
            .collect();
        depts.sort();
        assert_eq!(depts, vec![5, 6, 7]);
        // Open-ended.
        let got = t
            .index_range_lookup(&idx, Some((&Value::Int(18), false)), None)
            .unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn backfill_existing_rows() {
        let pool = StdArc::new(BufferPool::new(
            StdArc::new(DiskManager::open_memory()),
            128,
        ));
        let heap = HeapFile::create(pool.clone()).unwrap();
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let t = Table::new("t".into(), schema, heap);
        for i in 0..50 {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        let tree = BTree::create(pool).unwrap();
        let idx = StdArc::new(Index::new("t_k".into(), vec![0], tree));
        t.backfill_index(&idx).unwrap();
        t.attach_index(idx);
        assert_eq!(t.index_lookup("t_k", &[Value::Int(25)]).unwrap().len(), 1);
    }

    #[test]
    fn stats_count_scans_and_probes() {
        let (t, _) = table_with_index();
        for i in 0..10 {
            t.insert(row("x", 1.0, i)).unwrap();
        }
        t.scan_all().unwrap();
        assert_eq!(t.stats().rows_scanned.get(), 10);
        t.index_lookup("emp_dept", &[Value::Int(1)]).unwrap();
        assert_eq!(t.stats().index_probes.get(), 1);
    }
}
