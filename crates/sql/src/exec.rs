//! SQL-subset execution with an index-aware filter planner.

use crate::{Database, Table};
use std::sync::Arc;
use tman_common::{Result, Schema, TmanError, Tuple, Value};
use tman_expr::cnf::to_cnf;
use tman_expr::pred::{AtomKind, Pred};
use tman_expr::scalar::{Env, Scalar};
use tman_expr::BindCtx;
use tman_lang::ast::{ColumnDef, Expr, SelectCols, SqlStmt};
use tman_storage::RecordId;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// DDL succeeded.
    Ok,
    /// Rows affected by INSERT/UPDATE/DELETE.
    Affected(usize),
    /// Rows produced by SELECT.
    Rows(Vec<Tuple>),
}

impl ExecResult {
    /// The row set (empty for non-SELECT).
    pub fn rows(self) -> Vec<Tuple> {
        match self {
            ExecResult::Rows(r) => r,
            _ => Vec::new(),
        }
    }

    /// The affected-row count (0 for DDL/SELECT).
    pub fn affected(&self) -> usize {
        match self {
            ExecResult::Affected(n) => *n,
            _ => 0,
        }
    }
}

/// One row-level change made by a statement — what the paper's Informix
/// update-capture triggers observe. `op` mirrors the token operation.
#[derive(Debug, Clone, PartialEq)]
pub struct RowChange {
    /// Table the change happened on.
    pub table: String,
    /// 0 = insert, 1 = delete, 2 = update (token op codes).
    pub op: u8,
    /// Pre-image for delete/update.
    pub old: Option<Tuple>,
    /// Post-image for insert/update.
    pub new: Option<Tuple>,
}

/// Execute one parsed statement.
pub fn execute(db: &Database, stmt: &SqlStmt) -> Result<ExecResult> {
    execute_with_capture(db, stmt, &mut |_| {})
}

/// Execute one parsed statement, reporting every row-level change to
/// `capture` (the update-capture path of the TriggerMan architecture, §3).
pub fn execute_with_capture(
    db: &Database,
    stmt: &SqlStmt,
    capture: &mut dyn FnMut(RowChange),
) -> Result<ExecResult> {
    match stmt {
        SqlStmt::CreateTable { name, columns } => {
            db.create_table(name, schema_from_defs(columns)?)?;
            Ok(ExecResult::Ok)
        }
        SqlStmt::DropTable(name) => {
            db.drop_table(name)?;
            Ok(ExecResult::Ok)
        }
        SqlStmt::CreateIndex {
            name,
            table,
            columns,
        } => {
            db.create_index(name, table, columns)?;
            Ok(ExecResult::Ok)
        }
        SqlStmt::Insert { table, values } => {
            let t = db.table(table)?;
            let ctx = BindCtx::new(vec![]);
            let env = Env::default();
            let vals: Vec<Value> = values
                .iter()
                .map(|e| ctx.scalar(e)?.eval(&env))
                .collect::<Result<_>>()?;
            let rid = t.insert(vals)?;
            capture(RowChange {
                table: t.name().to_string(),
                op: 0,
                old: None,
                new: Some(t.get(rid)?),
            });
            Ok(ExecResult::Affected(1))
        }
        SqlStmt::Update {
            table,
            sets,
            filter,
        } => {
            let t = db.table(table)?;
            let ctx = BindCtx::new(vec![(t.name().to_string(), t.schema())]);
            let set_plan: Vec<(usize, Scalar)> = sets
                .iter()
                .map(|(col, e)| {
                    let idx = t
                        .schema()
                        .index_of(col)
                        .ok_or_else(|| TmanError::Invalid(format!("no column '{col}'")))?;
                    Ok((idx, ctx.scalar(e)?))
                })
                .collect::<Result<_>>()?;
            let matches = find_matching(&t, &ctx, filter.as_ref())?;
            let n = matches.len();
            for (rid, row) in matches {
                let bind = Some(&row);
                let env = Env {
                    tuples: std::slice::from_ref(&bind),
                    consts: &[],
                };
                let mut new_vals: Vec<Value> = row.values().to_vec();
                for (col, s) in &set_plan {
                    new_vals[*col] = s.eval(&env)?;
                }
                let (old, new_rid) = t.update(rid, new_vals)?;
                capture(RowChange {
                    table: t.name().to_string(),
                    op: 2,
                    old: Some(old),
                    new: Some(t.get(new_rid)?),
                });
            }
            Ok(ExecResult::Affected(n))
        }
        SqlStmt::Delete { table, filter } => {
            let t = db.table(table)?;
            let ctx = BindCtx::new(vec![(t.name().to_string(), t.schema())]);
            let matches = find_matching(&t, &ctx, filter.as_ref())?;
            let n = matches.len();
            for (rid, _) in matches {
                let old = t.delete(rid)?;
                capture(RowChange {
                    table: t.name().to_string(),
                    op: 1,
                    old: Some(old),
                    new: None,
                });
            }
            Ok(ExecResult::Affected(n))
        }
        SqlStmt::Select {
            cols,
            table,
            filter,
        } => {
            let t = db.table(table)?;
            let ctx = BindCtx::new(vec![(t.name().to_string(), t.schema())]);
            let matches = find_matching(&t, &ctx, filter.as_ref())?;
            let rows = match cols {
                SelectCols::Star => matches.into_iter().map(|(_, r)| r).collect(),
                SelectCols::Exprs(es) => {
                    let scalars: Vec<Scalar> =
                        es.iter().map(|e| ctx.scalar(e)).collect::<Result<_>>()?;
                    matches
                        .into_iter()
                        .map(|(_, row)| {
                            let bind = Some(&row);
                            let env = Env {
                                tuples: std::slice::from_ref(&bind),
                                consts: &[],
                            };
                            Ok(Tuple::new(
                                scalars
                                    .iter()
                                    .map(|s| s.eval(&env))
                                    .collect::<Result<Vec<_>>>()?,
                            ))
                        })
                        .collect::<Result<Vec<_>>>()?
                }
            };
            Ok(ExecResult::Rows(rows))
        }
    }
}

/// Convenience: parse and execute.
pub fn execute_str(db: &Database, sql: &str) -> Result<ExecResult> {
    execute(db, &tman_lang::parse_sql(sql)?)
}

fn schema_from_defs(defs: &[ColumnDef]) -> Result<Schema> {
    Schema::new(
        defs.iter()
            .map(|d| tman_common::Column::new(d.name.clone(), d.ty))
            .collect(),
    )
}

/// Rows satisfying `filter`: equality-prefix index probe when possible,
/// full scan otherwise. The predicate is always re-verified on candidates.
fn find_matching(
    t: &Arc<Table>,
    ctx: &BindCtx<'_>,
    filter: Option<&Expr>,
) -> Result<Vec<(RecordId, Tuple)>> {
    let Some(filter) = filter else {
        return t.scan_all();
    };
    let pred = ctx.pred(filter)?;
    let cnf = to_cnf(&pred)?;

    // Collect `col = <constant>` conjuncts.
    let mut eq_cols: Vec<(usize, Value)> = Vec::new();
    for c in &cnf.conjuncts {
        if c.atoms.len() != 1 || c.atoms[0].negated {
            continue;
        }
        let AtomKind::Cmp {
            op: tman_expr::CmpOp::Eq,
            left,
            right,
        } = &c.atoms[0].kind
        else {
            continue;
        };
        let pair = match (left.as_column(), right.is_constant()) {
            (Some((0, col)), true) => Some((col, right)),
            _ => match (right.as_column(), left.is_constant()) {
                (Some((0, col)), true) => Some((col, left)),
                _ => None,
            },
        };
        if let Some((col, konst)) = pair {
            let v = konst.eval(&Env::default())?;
            if !eq_cols.iter().any(|(c2, _)| *c2 == col) {
                eq_cols.push((col, v));
            }
        }
    }

    // Best index = longest equality-covered prefix.
    let mut best: Option<(Arc<crate::Index>, Vec<Value>)> = None;
    for idx in t.indexes() {
        let mut key = Vec::new();
        for c in idx.cols() {
            match eq_cols.iter().find(|(col, _)| col == c) {
                Some((_, v)) => key.push(v.clone()),
                None => break,
            }
        }
        if !key.is_empty() && best.as_ref().map(|(_, k)| k.len()).unwrap_or(0) < key.len() {
            best = Some((idx, key));
        }
    }

    let candidates = match &best {
        Some((idx, key)) => t.index_prefix_lookup(idx, key)?,
        None => t.scan_all()?,
    };
    let mut out = Vec::new();
    for (rid, row) in candidates {
        let bind = Some(&row);
        let env = Env {
            tuples: std::slice::from_ref(&bind),
            consts: &[],
        };
        if pred_matches(&pred, &env)? {
            out.push((rid, row));
        }
    }
    Ok(out)
}

fn pred_matches(p: &Pred, env: &Env<'_>) -> Result<bool> {
    p.matches(env)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_emps() -> Database {
        let db = Database::open_memory(128);
        execute_str(
            &db,
            "create table emp (name varchar(32), salary float, dept int)",
        )
        .unwrap();
        for (n, s, d) in [
            ("Bob", 80000.0, 7),
            ("Alice", 90000.0, 7),
            ("Eve", 50000.0, 3),
            ("Fred", 60000.0, 3),
        ] {
            execute_str(&db, &format!("insert into emp values ('{n}', {s}, {d})")).unwrap();
        }
        db
    }

    #[test]
    fn select_with_filter_and_projection() {
        let db = db_with_emps();
        let rows = execute_str(&db, "select name from emp where salary > 70000")
            .unwrap()
            .rows();
        let mut names: Vec<String> = rows
            .iter()
            .map(|r| r.get(0).as_str().unwrap().to_string())
            .collect();
        names.sort();
        assert_eq!(names, vec!["Alice", "Bob"]);
        // Star select.
        let rows = execute_str(&db, "select * from emp where dept = 3")
            .unwrap()
            .rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].arity(), 3);
    }

    #[test]
    fn paper_action_update_fred_to_bobs_salary() {
        // The SQL inside the updateFred trigger action, post macro
        // substitution of :NEW.emp.salary with 95000.
        let db = db_with_emps();
        let n = execute_str(&db, "update emp set salary = 95000 where emp.name = 'Fred'")
            .unwrap()
            .affected();
        assert_eq!(n, 1);
        let rows = execute_str(&db, "select salary from emp where name = 'Fred'")
            .unwrap()
            .rows();
        assert_eq!(rows[0].get(0), &Value::Float(95000.0));
    }

    #[test]
    fn update_expression_references_row() {
        let db = db_with_emps();
        execute_str(&db, "update emp set salary = salary * 2 where dept = 3").unwrap();
        let rows = execute_str(&db, "select salary from emp where name = 'Eve'")
            .unwrap()
            .rows();
        assert_eq!(rows[0].get(0), &Value::Float(100000.0));
    }

    #[test]
    fn delete_with_and_without_filter() {
        let db = db_with_emps();
        assert_eq!(
            execute_str(&db, "delete from emp where dept = 7")
                .unwrap()
                .affected(),
            2
        );
        assert_eq!(execute_str(&db, "delete from emp").unwrap().affected(), 2);
        assert!(execute_str(&db, "select * from emp")
            .unwrap()
            .rows()
            .is_empty());
    }

    #[test]
    fn index_is_used_for_equality() {
        let db = db_with_emps();
        execute_str(&db, "create index emp_dept on emp (dept)").unwrap();
        let t = db.table("emp").unwrap();
        let scans_before = t.stats().rows_scanned.get();
        let rows = execute_str(&db, "select * from emp where dept = 7 and salary > 0")
            .unwrap()
            .rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(t.stats().index_probes.get(), 1);
        assert_eq!(t.stats().rows_scanned.get(), scans_before, "no full scan");
    }

    #[test]
    fn composite_index_prefix_match() {
        let db = Database::open_memory(128);
        execute_str(&db, "create table c (sig int, c1 int, c2 varchar(8))").unwrap();
        execute_str(&db, "create index c_key on c (c1, c2)").unwrap();
        for i in 0..50 {
            execute_str(
                &db,
                &format!("insert into c values ({i}, {}, 'v{}')", i % 5, i % 3),
            )
            .unwrap();
        }
        // Full-key probe.
        let rows = execute_str(&db, "select * from c where c1 = 2 and c2 = 'v1'")
            .unwrap()
            .rows();
        assert!(rows.iter().all(|r| r.get(1) == &Value::Int(2)));
        // Prefix probe (only c1 bound) still uses the index.
        let t = db.table("c").unwrap();
        let probes = t.stats().index_probes.get();
        let rows = execute_str(&db, "select * from c where c1 = 2")
            .unwrap()
            .rows();
        assert_eq!(rows.len(), 10);
        assert_eq!(t.stats().index_probes.get(), probes + 1);
    }

    #[test]
    fn insert_values_may_be_expressions() {
        let db = db_with_emps();
        execute_str(&db, "insert into emp values ('Zed', 1000 * 55, 2 + 3)").unwrap();
        let rows = execute_str(&db, "select salary, dept from emp where name = 'Zed'")
            .unwrap()
            .rows();
        assert_eq!(rows[0].get(0), &Value::Float(55000.0));
        assert_eq!(rows[0].get(1), &Value::Int(5));
    }

    #[test]
    fn errors_surface() {
        let db = db_with_emps();
        assert!(execute_str(&db, "select * from nosuch").is_err());
        assert!(execute_str(&db, "insert into emp values (1)").is_err());
        assert!(execute_str(&db, "update emp set bogus = 1").is_err());
        assert!(execute_str(&db, "select * from emp where name > 5").is_err());
    }

    #[test]
    fn null_semantics_in_filters() {
        let db = db_with_emps();
        execute_str(&db, "insert into emp values (null, 10000, 1)").unwrap();
        // NULL name doesn't match equality either way.
        assert_eq!(
            execute_str(&db, "delete from emp where name = 'Bob' or name <> 'Bob'")
                .unwrap()
                .affected(),
            4
        );
        let rows = execute_str(&db, "select * from emp where name is null")
            .unwrap()
            .rows();
        assert_eq!(rows.len(), 1);
    }
}
