//! `tman-sql` — a minimal relational executor over `tman-storage`.
//!
//! This is the "Informix" stand-in: the paper needs its host DBMS for the
//! trigger catalogs, the per-signature constant tables (with optional
//! clustered indexes), the persistent update-descriptor queue, and for
//! running `execSQL` rule actions. This crate provides exactly that
//! surface:
//!
//! * [`Database`] — named tables with persistent schemas over a
//!   [`tman_storage::Storage`],
//! * [`Table`] — heap rows plus any number of secondary B+tree indexes,
//!   maintained on every mutation,
//! * [`exec`] — execution of the parsed SQL subset
//!   (`CREATE TABLE` / `CREATE INDEX` / `INSERT` / `UPDATE` / `DELETE` /
//!   `SELECT`) with an index-aware filter planner.
//!
//! The executor re-verifies the full predicate on every index-qualified row
//! (standard practice, and it also papers over the documented f64 key
//! encoding lossiness in `tman_storage::keyenc`).

pub mod exec;
pub mod table;

pub use exec::{execute, execute_with_capture, ExecResult, RowChange};
pub use table::{Index, Table};

use parking_lot::RwLock;
use std::path::Path;
use std::sync::Arc;
use tman_common::fxhash::FxHashMap;
use tman_common::{Column, Result, Schema, TmanError, Tuple, Value};
use tman_storage::Storage;

/// Name of the heap holding table/index definitions.
const SCHEMA_CATALOG: &str = "__schema";

/// A database: named tables over one storage instance.
pub struct Database {
    storage: Storage,
    tables: RwLock<FxHashMap<String, Arc<Table>>>,
}

impl Database {
    /// Open (or create) a file-backed database.
    pub fn open_file(path: &Path, pool_pages: usize) -> Result<Database> {
        Self::open_file_with(path, pool_pages, None)
    }

    /// Open a file-backed database with an optional fault-injection plan
    /// attached to the disk manager (test builds). When the storage layer
    /// reports crash recovery, every secondary index is rebuilt from its
    /// base heap — indexes are derived state and may lag the heap after a
    /// torn checkpoint.
    pub fn open_file_with(
        path: &Path,
        pool_pages: usize,
        faults: Option<tman_storage::FaultPlan>,
    ) -> Result<Database> {
        Self::open_file_opts(path, pool_pages, faults, tman_storage::WalConfig::default())
    }

    /// [`open_file_with`](Self::open_file_with) plus write-ahead-log
    /// tuning (checkpoint threshold), passed through to the storage layer.
    pub fn open_file_opts(
        path: &Path,
        pool_pages: usize,
        faults: Option<tman_storage::FaultPlan>,
        wal_cfg: tman_storage::WalConfig,
    ) -> Result<Database> {
        let storage = Storage::open_file_opts(path, pool_pages, faults, wal_cfg)?;
        let recovered = storage.was_recovered();
        let db = Self::with_storage(storage)?;
        if recovered {
            db.rebuild_indexes()?;
        }
        Ok(db)
    }

    /// Rebuild every secondary index from its base heap (crash recovery).
    /// B+tree insertion overwrites exact-duplicate keys, so re-inserting
    /// entries that already survived is harmless.
    fn rebuild_indexes(&self) -> Result<()> {
        let tables: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
        for t in tables {
            for idx in t.indexes() {
                t.backfill_index(&idx)?;
            }
        }
        Ok(())
    }

    /// Create a volatile in-memory database.
    pub fn open_memory(pool_pages: usize) -> Database {
        Self::with_storage(Storage::open_memory(pool_pages)).expect("memory db")
    }

    fn with_storage(storage: Storage) -> Result<Database> {
        if !storage.dir().exists(SCHEMA_CATALOG)? {
            storage.create_heap(SCHEMA_CATALOG)?;
        }
        let db = Database {
            storage,
            tables: RwLock::new(FxHashMap::default()),
        };
        db.load_catalog()?;
        Ok(db)
    }

    /// Reload table handles from the schema catalog (called at open).
    fn load_catalog(&self) -> Result<()> {
        let cat = self.storage.open_heap(SCHEMA_CATALOG)?;
        // First pass: tables. Second: indexes (they reference tables).
        let mut defs: Vec<Tuple> = Vec::new();
        cat.scan(|_, rec| {
            defs.push(Tuple::decode(rec)?);
            Ok(true)
        })?;
        let mut tables = self.tables.write();
        for def in defs.iter().filter(|d| d.get(0) == &Value::Int(0)) {
            let name = def.get(1).as_str().unwrap().to_string();
            let schema = decode_schema(def.get(2).as_str().unwrap())?;
            let heap = self.storage.open_heap(&format!("tbl_{name}"))?;
            tables.insert(
                name.to_lowercase(),
                Arc::new(Table::new(name, schema, heap)),
            );
        }
        for def in defs.iter().filter(|d| d.get(0) == &Value::Int(1)) {
            let idx_name = def.get(1).as_str().unwrap().to_string();
            let table_name = def.get(2).as_str().unwrap().to_lowercase();
            let cols: Vec<usize> = def
                .get(3)
                .as_str()
                .unwrap()
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse()
                        .map_err(|_| TmanError::Storage("bad index cols".into()))
                })
                .collect::<Result<_>>()?;
            let table = tables.get(&table_name).ok_or_else(|| {
                TmanError::Storage(format!("index on missing table {table_name}"))
            })?;
            let tree = self.storage.open_btree(&format!("idx_{idx_name}"))?;
            table.attach_index(Arc::new(Index::new(idx_name, cols, tree)));
        }
        Ok(())
    }

    /// The underlying storage (for I/O statistics).
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Create a table.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        let key = name.to_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(TmanError::AlreadyExists(format!("table '{name}'")));
        }
        let heap = self.storage.create_heap(&format!("tbl_{name}"))?;
        let cat = self.storage.open_heap(SCHEMA_CATALOG)?;
        cat.insert(
            &Tuple::new(vec![
                Value::Int(0),
                Value::str(name),
                Value::str(encode_schema(&schema)),
                Value::Null,
            ])
            .encode(),
        )?;
        let t = Arc::new(Table::new(name.to_string(), schema, heap));
        tables.insert(key, t.clone());
        Ok(t)
    }

    /// Look up a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| TmanError::NotFound(format!("table '{name}'")))
    }

    /// Does a table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_lowercase())
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables
            .read()
            .values()
            .map(|t| t.name().to_string())
            .collect()
    }

    /// Create a secondary index on `columns` of `table`, backfilling it
    /// from existing rows.
    pub fn create_index(&self, name: &str, table: &str, columns: &[String]) -> Result<()> {
        let t = self.table(table)?;
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| {
                t.schema()
                    .index_of(c)
                    .ok_or_else(|| TmanError::Invalid(format!("no column '{c}' in '{table}'")))
            })
            .collect::<Result<_>>()?;
        if t.index(name).is_some() {
            return Err(TmanError::AlreadyExists(format!("index '{name}'")));
        }
        let tree = self.storage.create_btree(&format!("idx_{name}"))?;
        let idx = Arc::new(Index::new(name.to_string(), cols, tree));
        t.backfill_index(&idx)?;
        let cat = self.storage.open_heap(SCHEMA_CATALOG)?;
        cat.insert(
            &Tuple::new(vec![
                Value::Int(1),
                Value::str(name),
                Value::str(t.name()),
                Value::str(
                    idx.cols()
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                ),
            ])
            .encode(),
        )?;
        t.attach_index(idx);
        Ok(())
    }

    /// Drop a table (its pages are leaked; catalog entry removed).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_lowercase();
        let mut tables = self.tables.write();
        let t = tables
            .remove(&key)
            .ok_or_else(|| TmanError::NotFound(format!("table '{name}'")))?;
        self.storage.drop_object(&format!("tbl_{}", t.name()))?;
        // Remove catalog rows for the table and its indexes.
        let cat = self.storage.open_heap(SCHEMA_CATALOG)?;
        let mut dead = Vec::new();
        cat.scan(|rid, rec| {
            let tup = Tuple::decode(rec)?;
            let is_table_row = tup.get(0) == &Value::Int(0)
                && tup.get(1).as_str().map(|s| s.eq_ignore_ascii_case(name)) == Some(true);
            let is_index_row = tup.get(0) == &Value::Int(1)
                && tup.get(2).as_str().map(|s| s.eq_ignore_ascii_case(name)) == Some(true);
            if is_table_row || is_index_row {
                dead.push(rid);
            }
            Ok(true)
        })?;
        for rid in dead {
            cat.delete(rid)?;
        }
        for idx in t.indexes() {
            let _ = self.storage.drop_object(&format!("idx_{}", idx.name()));
        }
        Ok(())
    }

    /// Flush all dirty pages.
    pub fn checkpoint(&self) -> Result<()> {
        self.storage.checkpoint()
    }
}

fn encode_schema(schema: &Schema) -> String {
    schema
        .columns()
        .iter()
        .map(|c| {
            let ty = match c.ty {
                tman_common::DataType::Int => "int".to_string(),
                tman_common::DataType::Float => "float".to_string(),
                tman_common::DataType::Char(n) => format!("char({n})"),
                tman_common::DataType::Varchar(n) => format!("varchar({n})"),
            };
            format!("{} {}", c.name, ty)
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn decode_schema(s: &str) -> Result<Schema> {
    let mut cols = Vec::new();
    for part in s.split(';').filter(|p| !p.is_empty()) {
        let (name, ty) = part
            .split_once(' ')
            .ok_or_else(|| TmanError::Storage(format!("bad schema entry '{part}'")))?;
        let ty = if ty == "int" {
            tman_common::DataType::Int
        } else if ty == "float" {
            tman_common::DataType::Float
        } else if let Some(n) = ty.strip_prefix("char(").and_then(|t| t.strip_suffix(')')) {
            tman_common::DataType::Char(
                n.parse()
                    .map_err(|_| TmanError::Storage("bad char len".into()))?,
            )
        } else if let Some(n) = ty
            .strip_prefix("varchar(")
            .and_then(|t| t.strip_suffix(')'))
        {
            tman_common::DataType::Varchar(
                n.parse()
                    .map_err(|_| TmanError::Storage("bad varchar len".into()))?,
            )
        } else {
            return Err(TmanError::Storage(format!("bad schema type '{ty}'")));
        };
        cols.push(Column::new(name, ty));
    }
    Schema::new(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tman_common::DataType;

    fn emp_schema() -> Schema {
        Schema::from_pairs(&[
            ("name", DataType::Varchar(32)),
            ("salary", DataType::Float),
            ("dept", DataType::Int),
        ])
    }

    #[test]
    fn create_and_lookup_tables() {
        let db = Database::open_memory(64);
        db.create_table("emp", emp_schema()).unwrap();
        assert!(db.has_table("EMP"));
        assert!(db.table("emp").is_ok());
        assert!(db.create_table("emp", emp_schema()).is_err());
        assert!(db.table("nope").is_err());
    }

    #[test]
    fn schema_roundtrip() {
        let s = emp_schema();
        assert_eq!(decode_schema(&encode_schema(&s)).unwrap(), s);
    }

    #[test]
    fn drop_table_removes_everything() {
        let db = Database::open_memory(64);
        db.create_table("t", emp_schema()).unwrap();
        db.create_index("t_dept", "t", &["dept".into()]).unwrap();
        db.drop_table("t").unwrap();
        assert!(!db.has_table("t"));
        // Recreate under the same name works.
        db.create_table("t", emp_schema()).unwrap();
        db.create_index("t_dept2", "t", &["dept".into()]).unwrap();
    }

    #[test]
    fn persistence_of_tables_and_indexes() {
        let path = std::env::temp_dir().join(format!("tman_sql_{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let db = Database::open_file(&path, 32).unwrap();
            let t = db.create_table("emp", emp_schema()).unwrap();
            t.insert(vec![
                Value::str("Bob"),
                Value::Float(80000.0),
                Value::Int(7),
            ])
            .unwrap();
            db.create_index("emp_dept", "emp", &["dept".into()])
                .unwrap();
            db.checkpoint().unwrap();
        }
        {
            let db = Database::open_file(&path, 32).unwrap();
            let t = db.table("emp").unwrap();
            assert_eq!(t.schema(), &emp_schema());
            let rows = t.scan_all().unwrap();
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].1.get(0), &Value::str("Bob"));
            // Index survived and finds the row.
            let hits = t.index_lookup("emp_dept", &[Value::Int(7)]).unwrap();
            assert_eq!(hits.len(), 1);
        }
        let _ = std::fs::remove_file(&path);
    }
}
