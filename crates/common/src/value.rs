//! Scalar values and data types.
//!
//! The paper's current implementation "supports char, varchar, integer, and
//! float data types" (§3). We model exactly those, plus SQL NULL. `Value`
//! must be usable as a hash/index key (constant sets hash on constant
//! tuples, B+trees order them), so it implements total `Eq`, `Ord`, and
//! `Hash` — floats use IEEE `total_cmp` bit semantics for this purpose.

use crate::error::{Result, TmanError};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Fixed-length character string (blank-insensitive compare not
    /// implemented; length enforced on ingest).
    Char(u16),
    /// Variable-length string with maximum length.
    Varchar(u16),
}

impl DataType {
    /// True if a value of type `other` can be stored in a column of `self`
    /// (identical type, any string into any string type within length, or
    /// int into float).
    pub fn accepts(&self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Null) => true,
            (DataType::Int, Value::Int(_)) => true,
            (DataType::Float, Value::Float(_)) | (DataType::Float, Value::Int(_)) => true,
            (DataType::Char(n), Value::Str(s)) | (DataType::Varchar(n), Value::Str(s)) => {
                s.len() <= *n as usize
            }
            _ => false,
        }
    }

    /// Coerce `v` for storage into this column type.
    pub fn coerce(&self, v: Value) -> Result<Value> {
        if let Value::Null = v {
            return Ok(Value::Null);
        }
        match (self, &v) {
            (DataType::Int, Value::Int(_)) => Ok(v),
            (DataType::Float, Value::Float(_)) => Ok(v),
            (DataType::Float, Value::Int(i)) => Ok(Value::Float(*i as f64)),
            (DataType::Char(n), Value::Str(s)) | (DataType::Varchar(n), Value::Str(s)) => {
                if s.len() <= *n as usize {
                    Ok(v)
                } else {
                    Err(TmanError::Type(format!(
                        "string of length {} exceeds {}",
                        s.len(),
                        self
                    )))
                }
            }
            _ => Err(TmanError::Type(format!("cannot store {v:?} in {self}"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "integer"),
            DataType::Float => write!(f, "float"),
            DataType::Char(n) => write!(f, "char({n})"),
            DataType::Varchar(n) => write!(f, "varchar({n})"),
        }
    }
}

/// A scalar runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Compares less than everything for index ordering; equality
    /// in *predicates* uses three-valued logic (see `tman-expr`), but `Eq`
    /// here is total so values can key hash maps.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Character data (char or varchar).
    Str(String),
}

impl Value {
    /// String value helper.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True if this is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Type tag ordinal used by the binary encoding and by cross-type
    /// ordering (Null < Int/Float < Str; numerics compare numerically).
    #[inline]
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 1, // numerics share an ordering class
            Value::Str(_) => 2,
        }
    }

    /// Numeric view (int promoted to float), if numeric.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, if an integer.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if character data.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total-order comparison used for index keys and sorting.
    ///
    /// NULL sorts first; ints and floats compare numerically (so `Int(1)`
    /// equals `Float(1.0)` — required because `emp.salary > 80000` may mix
    /// an int constant with a float column); strings compare bytewise.
    /// Cross-class comparisons order by class tag, so the order is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }

    /// Approximate in-memory footprint, used by memory accounting in the
    /// constant-set organization experiments.
    pub fn heap_size(&self) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Str(s) => s.capacity(),
                _ => 0,
            }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            // Int and Float must hash identically when numerically equal
            // (Eq treats Int(1) == Float(1.0)). Integral floats hash as
            // their integer value; all i64 -> f64 -> i64 round-trips that
            // stay integral agree.
            Value::Int(i) => {
                state.write_u8(1);
                state.write_u64(*i as u64);
            }
            Value::Float(f) => {
                state.write_u8(1);
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    state.write_u64(*f as i64 as u64);
                } else {
                    state.write_u64(f.to_bits());
                }
            }
            Value::Str(s) => {
                state.write_u8(2);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::hash_one;

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Int(1), Value::Float(1.5));
        assert_eq!(hash_one(&Value::Int(42)), hash_one(&Value::Float(42.0)));
    }

    #[test]
    fn null_sorts_first() {
        let mut v = [
            Value::Int(3),
            Value::Null,
            Value::str("a"),
            Value::Float(-1.0),
        ];
        v.sort();
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Float(-1.0));
        assert_eq!(v[2], Value::Int(3));
        assert_eq!(v[3], Value::str("a"));
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            DataType::Float.coerce(Value::Int(2)).unwrap(),
            Value::Float(2.0)
        );
        assert!(DataType::Int.coerce(Value::str("x")).is_err());
        assert!(DataType::Varchar(3).coerce(Value::str("abcd")).is_err());
        assert_eq!(
            DataType::Char(4).coerce(Value::str("abcd")).unwrap(),
            Value::str("abcd")
        );
        // NULL stores anywhere.
        assert_eq!(DataType::Int.coerce(Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn accepts_matches_coerce() {
        assert!(DataType::Float.accepts(&Value::Int(1)));
        assert!(!DataType::Int.accepts(&Value::Float(1.0)));
        assert!(DataType::Varchar(5).accepts(&Value::str("abc")));
        assert!(!DataType::Varchar(2).accepts(&Value::str("abc")));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("bob").to_string(), "'bob'");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(DataType::Varchar(16).to_string(), "varchar(16)");
    }

    #[test]
    fn nan_total_order_is_consistent() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(nan, nan.clone());
    }
}
