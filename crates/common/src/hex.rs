//! Hex encoding of binary payloads stored in varchar columns.
//!
//! The persistent update queue serializes descriptor bodies as hex so they
//! fit the storage engine's text columns; catalog/storage key-encoding can
//! reuse the same helpers. Lives here (rather than in the engine) so every
//! crate below the engine can share one implementation.

use crate::error::{Result, TmanError};

/// Lowercase hex encoding of `bytes` (two characters per byte).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`hex_encode`]. Odd-length or non-hex input is a
/// [`TmanError::Storage`] error, not a panic — queue bodies come back from
/// disk and may be corrupt.
pub fn hex_decode(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(TmanError::Storage("odd-length hex body".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|e| TmanError::Storage(format!("bad hex body: {e}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255).collect();
        let enc = hex_encode(&data);
        assert_eq!(enc.len(), 512);
        assert_eq!(hex_decode(&enc).unwrap(), data);
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn odd_length_is_storage_error() {
        let err = hex_decode("abc").unwrap_err();
        assert_eq!(err.kind(), "storage");
        assert!(err.to_string().contains("odd-length"));
    }

    #[test]
    fn non_hex_digit_is_storage_error() {
        let err = hex_decode("zz").unwrap_err();
        assert_eq!(err.kind(), "storage");
    }

    #[test]
    fn uppercase_input_decodes() {
        assert_eq!(hex_decode("00FFAB").unwrap(), vec![0, 255, 171]);
    }
}
