//! Strongly-typed identifiers.
//!
//! The paper's catalogs key everything by integer ids (`triggerID`, `sigID`,
//! `dataSrcID`, ...). Newtypes keep them from being mixed up across the nine
//! crates, at zero runtime cost.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw integer value (as stored in catalog tables).
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies a data source (normally a table; possibly a tuple stream).
    DataSourceId,
    u32
);
id_type!(
    /// Identifies a trigger (the catalog `trigger.triggerID` column).
    TriggerId,
    u64
);
id_type!(
    /// Identifies a trigger set (the catalog `trigger_set.tsID` column).
    TriggerSetId,
    u32
);
id_type!(
    /// Identifies an expression signature (`expression_signature.sigID`).
    SignatureId,
    u32
);
id_type!(
    /// Identifies one selection-predicate expression instance
    /// (`const_tableN.exprID`).
    ExprId,
    u64
);
id_type!(
    /// Identifies a node in a trigger's discrimination network
    /// (`const_tableN.nextNetworkNode`).
    NodeId,
    u32
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_display() {
        let t = TriggerId(7);
        assert_eq!(t.raw(), 7);
        assert_eq!(t.to_string(), "TriggerId(7)");
        let s: SignatureId = 3u32.into();
        assert_eq!(s, SignatureId(3));
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(TriggerId(1) < TriggerId(2));
        assert_eq!(DataSourceId::default(), DataSourceId(0));
    }
}
