//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across every crate in the workspace.
pub type Result<T> = std::result::Result<T, TmanError>;

/// The single error type shared by the whole system.
///
/// A real product would split this per layer; for the reproduction a single
/// enum keeps error plumbing between the nine crates simple while still
/// carrying enough context to diagnose failures in tests.
#[derive(Debug, Clone, PartialEq)]
pub enum TmanError {
    /// Lexer/parser failure in the TriggerMan language or SQL subset.
    Parse(String),
    /// A command was syntactically valid but semantically wrong
    /// (unknown data source, type mismatch, duplicate trigger name, ...).
    Invalid(String),
    /// Something referenced does not exist.
    NotFound(String),
    /// Something being created already exists.
    AlreadyExists(String),
    /// Type error while evaluating or binding an expression.
    Type(String),
    /// Storage-layer failure (page, buffer pool, heap, index).
    Storage(String),
    /// Underlying I/O failure.
    Io(String),
    /// Data read back from disk failed validation (bad checksum, torn page,
    /// malformed record framing). Recoverable: callers skip/quarantine the
    /// damaged unit and continue.
    Corrupt(String),
    /// A feature the paper defers to future work (temporal conditions,
    /// aggregates via `group by`/`having`, Gator networks).
    Unsupported(String),
    /// Internal invariant violation — a bug in this codebase.
    Internal(String),
}

impl TmanError {
    /// Short machine-readable category name, used in logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            TmanError::Parse(_) => "parse",
            TmanError::Invalid(_) => "invalid",
            TmanError::NotFound(_) => "not_found",
            TmanError::AlreadyExists(_) => "already_exists",
            TmanError::Type(_) => "type",
            TmanError::Storage(_) => "storage",
            TmanError::Io(_) => "io",
            TmanError::Corrupt(_) => "corrupt",
            TmanError::Unsupported(_) => "unsupported",
            TmanError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for TmanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmanError::Parse(m) => write!(f, "parse error: {m}"),
            TmanError::Invalid(m) => write!(f, "invalid command: {m}"),
            TmanError::NotFound(m) => write!(f, "not found: {m}"),
            TmanError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            TmanError::Type(m) => write!(f, "type error: {m}"),
            TmanError::Storage(m) => write!(f, "storage error: {m}"),
            TmanError::Io(m) => write!(f, "io error: {m}"),
            TmanError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            TmanError::Unsupported(m) => write!(f, "unsupported: {m}"),
            TmanError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for TmanError {}

impl From<std::io::Error> for TmanError {
    fn from(e: std::io::Error) -> Self {
        TmanError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = TmanError::NotFound("trigger 'x'".into());
        assert_eq!(e.to_string(), "not found: trigger 'x'");
        assert_eq!(e.kind(), "not_found");
    }

    #[test]
    fn corrupt_is_its_own_kind() {
        let e = TmanError::Corrupt("page 3 checksum mismatch".into());
        assert_eq!(e.kind(), "corrupt");
        assert_eq!(e.to_string(), "corrupt data: page 3 checksum mismatch");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk gone");
        let e: TmanError = io.into();
        assert_eq!(e.kind(), "io");
        assert!(e.to_string().contains("disk gone"));
    }
}
