//! Table / data-source schemas.

use crate::error::{Result, TmanError};
use crate::value::{DataType, Value};

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case preserved; lookups are case-insensitive, matching
    /// the keyword-insensitive TriggerMan language).
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Column {
    /// Build a column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns; duplicate names (case-insensitive) are
    /// rejected.
    pub fn new(columns: Vec<Column>) -> Result<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i]
                .iter()
                .any(|p| p.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(TmanError::Invalid(format!("duplicate column '{}'", c.name)));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Schema {
        Schema::new(pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect())
            .expect("schema literals must not contain duplicates")
    }

    /// Columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Case-insensitive column lookup; returns the column ordinal.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column by ordinal.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Validate and coerce a row of values against this schema.
    pub fn coerce_row(&self, values: Vec<Value>) -> Result<Vec<Value>> {
        if values.len() != self.columns.len() {
            return Err(TmanError::Type(format!(
                "expected {} values, got {}",
                self.columns.len(),
                values.len()
            )));
        }
        values
            .into_iter()
            .zip(&self.columns)
            .map(|(v, c)| {
                c.ty.coerce(v)
                    .map_err(|e| TmanError::Type(format!("column '{}': {e}", c.name)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> Schema {
        Schema::from_pairs(&[
            ("name", DataType::Varchar(32)),
            ("salary", DataType::Float),
            ("dept", DataType::Int),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = emp();
        assert_eq!(s.index_of("SALARY"), Some(1));
        assert_eq!(s.index_of("Name"), Some(0));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("A", DataType::Float),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn coerce_row_applies_column_types() {
        let s = emp();
        let row = s
            .coerce_row(vec![Value::str("Bob"), Value::Int(80000), Value::Int(7)])
            .unwrap();
        assert_eq!(row[1], Value::Float(80000.0));
        assert!(s.coerce_row(vec![Value::Int(1)]).is_err());
        assert!(s
            .coerce_row(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
            .is_err());
    }
}
