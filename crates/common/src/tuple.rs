//! Tuples and their binary encoding.
//!
//! The encoding is self-describing (a type tag per value), so update
//! descriptors and catalog rows can be decoded without consulting a schema.
//! Layout per value:
//!
//! ```text
//! 0x00                      NULL
//! 0x01 <i64 le>             Int
//! 0x02 <f64 le bits>        Float
//! 0x03 <u32 le len> <utf8>  Str
//! ```
//!
//! A tuple is `<u16 le arity>` followed by its values.

use crate::error::{Result, TmanError};
use crate::value::Value;
use std::sync::Arc;

/// A row of values. Cheap to clone (`Arc` payload) because tokens carrying
/// tuples fan out across predicate-index partitions and network nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Build from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple {
            values: values.into(),
        }
    }

    /// Values, in schema order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column ordinal `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Number of values.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Approximate heap footprint (for memory accounting experiments).
    pub fn heap_size(&self) -> usize {
        self.values.iter().map(Value::heap_size).sum::<usize>()
    }

    /// Serialize into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in self.values.iter() {
            encode_value(v, out);
        }
    }

    /// Serialize to a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 * self.values.len() + 2);
        self.encode_into(&mut out);
        out
    }

    /// Decode a tuple, advancing `cursor` past it.
    pub fn decode_from(buf: &[u8], cursor: &mut usize) -> Result<Tuple> {
        let arity = read_u16(buf, cursor)? as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(decode_value(buf, cursor)?);
        }
        Ok(Tuple::new(values))
    }

    /// Decode a tuple that occupies the entire buffer.
    pub fn decode(buf: &[u8]) -> Result<Tuple> {
        let mut cursor = 0;
        let t = Tuple::decode_from(buf, &mut cursor)?;
        if cursor != buf.len() {
            return Err(TmanError::Storage(format!(
                "trailing bytes after tuple: {} of {}",
                buf.len() - cursor,
                buf.len()
            )));
        }
        Ok(t)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

/// Encode one value (see module docs for the layout).
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0x00),
        Value::Int(i) => {
            out.push(0x01);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(0x02);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(0x03);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Decode one value, advancing `cursor`.
pub fn decode_value(buf: &[u8], cursor: &mut usize) -> Result<Value> {
    let tag = *buf
        .get(*cursor)
        .ok_or_else(|| TmanError::Storage("truncated value tag".into()))?;
    *cursor += 1;
    match tag {
        0x00 => Ok(Value::Null),
        0x01 => {
            let bytes = take(buf, cursor, 8)?;
            Ok(Value::Int(i64::from_le_bytes(bytes.try_into().unwrap())))
        }
        0x02 => {
            let bytes = take(buf, cursor, 8)?;
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                bytes.try_into().unwrap(),
            ))))
        }
        0x03 => {
            let len_bytes = take(buf, cursor, 4)?;
            let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
            let s = take(buf, cursor, len)?;
            Ok(Value::Str(
                std::str::from_utf8(s)
                    .map_err(|e| TmanError::Storage(format!("invalid utf8 in value: {e}")))?
                    .to_string(),
            ))
        }
        t => Err(TmanError::Storage(format!("unknown value tag {t:#x}"))),
    }
}

fn take<'a>(buf: &'a [u8], cursor: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = cursor
        .checked_add(n)
        .ok_or_else(|| TmanError::Storage("length overflow".into()))?;
    if end > buf.len() {
        return Err(TmanError::Storage(format!(
            "truncated value: need {n} bytes at {cursor}, have {}",
            buf.len()
        )));
    }
    let s = &buf[*cursor..end];
    *cursor = end;
    Ok(s)
}

fn read_u16(buf: &[u8], cursor: &mut usize) -> Result<u16> {
    let b = take(buf, cursor, 2)?;
    Ok(u16::from_le_bytes(b.try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(t: &Tuple) -> Tuple {
        Tuple::decode(&t.encode()).unwrap()
    }

    #[test]
    fn encode_decode_all_types() {
        let t = Tuple::new(vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(3.75),
            Value::str("héllo"),
        ]);
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::new(vec![]);
        assert_eq!(t.encode(), vec![0u8, 0u8]);
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn truncated_buffer_is_error_not_panic() {
        let enc = Tuple::new(vec![Value::str("abcdef")]).encode();
        for cut in 0..enc.len() {
            assert!(Tuple::decode(&enc[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = Tuple::new(vec![Value::Int(1)]).encode();
        enc.push(0xFF);
        assert!(Tuple::decode(&enc).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(vals in proptest::collection::vec(any_value(), 0..12)) {
            let t = Tuple::new(vals);
            prop_assert_eq!(roundtrip(&t), t);
        }

        #[test]
        fn prop_decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Tuple::decode(&bytes); // must not panic
        }
    }

    fn any_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            // Use bit-pattern floats so NaN payloads round-trip exactly.
            any::<i64>().prop_map(|b| Value::Float(f64::from_bits(b as u64))),
            ".{0,24}".prop_map(Value::str),
        ]
    }
}
