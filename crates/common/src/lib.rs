//! Shared foundation types for the TriggerMan reproduction.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`Value`] / [`DataType`] — the object-relational scalar model the paper
//!   supports (char, varchar, integer, float).
//! * [`Schema`] / [`Tuple`] — row shape and row data, with a compact binary
//!   encoding used by the storage engine.
//! * [`UpdateDescriptor`] — the paper's *token*: `(data source id, operation
//!   code, old/new tuple)`.
//! * Strongly-typed identifiers ([`ids`]).
//! * [`fxhash`] — a fast, deterministic hasher for the hot predicate-index
//!   paths (vendored so the workspace has no hashing dependency).
//! * [`hex`] — hex encoding for binary payloads stored in varchar columns.
//! * [`stats`] — per-subsystem operation-counter groups (the counter type
//!   itself lives in `tman-telemetry` and is re-exported here).

pub mod error;
pub mod fxhash;
pub mod hex;
pub mod ids;
pub mod schema;
pub mod stats;
pub mod token;
pub mod tuple;
pub mod value;

pub use error::{Result, TmanError};
pub use ids::{DataSourceId, ExprId, NodeId, SignatureId, TriggerId, TriggerSetId};
pub use schema::{Column, Schema};
pub use token::{EventKind, TagClaims, TokenOp, UpdateDescriptor};
pub use tuple::Tuple;
pub use value::{DataType, Value};
