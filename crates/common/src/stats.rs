//! Lightweight operation counters.
//!
//! The experiments in EXPERIMENTS.md compare *work done* (pages read,
//! predicates evaluated, cache hits) as well as wall time, because the
//! paper's disk-vs-memory arguments are about I/O and probe counts. Each
//! subsystem owns a [`Counter`] group; counters are relaxed atomics so the
//! hot paths pay one uncontended fetch-add.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const STRIPES: usize = 16;

#[derive(Debug, Default)]
#[repr(align(64))]
struct Stripe(AtomicU64);

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Per-thread stripe index: hot counters are bumped from every driver
    /// thread hundreds of times per token, so a single atomic would
    /// ping-pong its cache line across cores and serialize the whole
    /// engine. Each thread gets its own (aligned) stripe.
    static STRIPE: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// A monotonically increasing counter, striped per thread to keep hot-path
/// increments off shared cache lines. Reads sum the stripes (slightly
/// stale under concurrency, exact once writers quiesce).
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    fn my_stripe(&self) -> &AtomicU64 {
        &self.stripes[STRIPE.with(|s| *s)].0
    }

    /// Add one.
    #[inline]
    pub fn bump(&self) {
        self.my_stripe().fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.my_stripe().fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (sum over stripes).
    pub fn get(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.swap(0, Ordering::Relaxed)).sum()
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        let c = Counter::new();
        c.add(self.get());
        c
    }
}

/// Storage-layer counters (owned by each `DiskManager`/`BufferPool`, but the
/// struct lives here so non-storage crates can report them).
#[derive(Debug, Default, Clone)]
pub struct StorageStats {
    /// Physical page reads from the backing file / simulated disk.
    pub page_reads: Counter,
    /// Physical page writes.
    pub page_writes: Counter,
    /// Buffer pool hits (page already resident).
    pub pool_hits: Counter,
    /// Buffer pool misses (page had to be read).
    pub pool_misses: Counter,
    /// Pages evicted to make room.
    pub evictions: Counter,
}

/// Predicate-index counters.
#[derive(Debug, Default, Clone)]
pub struct IndexStats {
    /// Tokens submitted to the root of the predicate index.
    pub tokens: Counter,
    /// Signature entries visited (one per signature per token).
    pub signatures_probed: Counter,
    /// Constant-set probes that used an organization's fast path.
    pub probes: Counter,
    /// "Rest of predicate" re-tests performed after an indexed match.
    pub residual_tests: Counter,
    /// Full predicate matches produced.
    pub matches: Counter,
}

/// Trigger-cache counters.
#[derive(Debug, Default, Clone)]
pub struct CacheStats {
    /// Pin requests satisfied from memory.
    pub hits: Counter,
    /// Pin requests that loaded from the catalog.
    pub misses: Counter,
    /// Cached triggers discarded by LRU.
    pub evictions: Counter,
}

impl CacheStats {
    /// Hit rate in \[0,1\]; zero when nothing was pinned yet.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits.get() as f64;
        let m = self.misses.get() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.bump();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn cache_hit_rate() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits.add(3);
        s.misses.add(1);
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }
}
