//! Per-subsystem operation-counter groups.
//!
//! The experiments in EXPERIMENTS.md compare *work done* (pages read,
//! predicates evaluated, cache hits) as well as wall time, because the
//! paper's disk-vs-memory arguments are about I/O and probe counts.
//!
//! The counter implementation itself lives in [`tman_telemetry`] (it grew
//! gauges, histograms, and a labeled registry around it); this module
//! re-exports it so existing `tman_common::stats::Counter` imports keep
//! working, and keeps the per-subsystem stat groups. Counters are held by
//! `Arc` so the engine can register the *same* instances into a telemetry
//! [`tman_telemetry::Registry`] — `show stats` and the Prometheus
//! exposition then read live values with zero extra hot-path work.

use std::sync::Arc;

pub use tman_telemetry::{Counter, Histogram};

/// Storage-layer counters (owned by each `DiskManager`/`BufferPool`, but the
/// struct lives here so non-storage crates can report them).
#[derive(Debug, Default, Clone)]
pub struct StorageStats {
    /// Physical page reads from the backing file / simulated disk.
    pub page_reads: Arc<Counter>,
    /// Physical page writes.
    pub page_writes: Arc<Counter>,
    /// Buffer pool hits (page already resident).
    pub pool_hits: Arc<Counter>,
    /// Buffer pool misses (page had to be read).
    pub pool_misses: Arc<Counter>,
    /// Pages evicted to make room.
    pub evictions: Arc<Counter>,
    /// Transient write errors that were retried by the buffer pool.
    pub io_retries: Arc<Counter>,
    /// Page-slot reads whose checksum or version trailer failed validation.
    pub checksum_failures: Arc<Counter>,
    /// Pages zeroed and quarantined by the open-time recovery pass because
    /// neither physical slot held a valid copy.
    pub quarantined_pages: Arc<Counter>,
    /// Faults injected by an attached [`FaultPlan`] (test builds only).
    pub faults_injected: Arc<Counter>,
    /// Explicit durability syncs (`fdatasync` on the file backend; a
    /// counted no-op on the memory backend). Group commit amortizes these:
    /// the wire tier's batched enqueue pays one sync per batch, so
    /// `syncs / tokens` is the number the E13 experiment watches.
    pub syncs: Arc<Counter>,
}

/// Write-ahead-log counters (owned by each `Wal`; the struct lives here so
/// the engine can register the same instances into the telemetry registry
/// as `tman_wal_*_total` series).
#[derive(Debug, Default, Clone)]
pub struct WalStats {
    /// Page frames (full images or deltas) appended to the log.
    pub appends: Arc<Counter>,
    /// Bytes appended to the log, commit records included.
    pub bytes: Arc<Counter>,
    /// `fdatasync` calls issued on the log file.
    pub fsyncs: Arc<Counter>,
    /// Commits made durable by piggybacking on another writer's fsync —
    /// the group-commit win: `group_commits / fsyncs` is the amortization
    /// factor.
    pub group_commits: Arc<Counter>,
    /// Committed redo records replayed into the page file at open.
    pub replayed_records: Arc<Counter>,
    /// Checkpoints that wrote dirty pages back and truncated the log.
    pub checkpoints: Arc<Counter>,
    /// Latency of making one commit durable (nanoseconds): the fsync wait,
    /// whether this writer issued it or piggybacked on a neighbor's.
    pub group_commit_ns: Arc<Histogram>,
}

impl StorageStats {
    /// Buffer-pool hit rate in \[0,1\]; zero before any fetch.
    pub fn pool_hit_rate(&self) -> f64 {
        let h = self.pool_hits.get() as f64;
        let m = self.pool_misses.get() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// Predicate-index counters.
#[derive(Debug, Default, Clone)]
pub struct IndexStats {
    /// Tokens submitted to the root of the predicate index.
    pub tokens: Arc<Counter>,
    /// Signature entries visited (one per signature per token).
    pub signatures_probed: Arc<Counter>,
    /// Constant-set probes that used an organization's fast path.
    pub probes: Arc<Counter>,
    /// "Rest of predicate" re-tests performed after an indexed match.
    pub residual_tests: Arc<Counter>,
    /// Full predicate matches produced.
    pub matches: Arc<Counter>,
}

impl IndexStats {
    /// Fraction of fast-path probes that required a rest-of-predicate
    /// retest; zero before any probe.
    pub fn retest_rate(&self) -> f64 {
        let p = self.probes.get() as f64;
        if p == 0.0 {
            0.0
        } else {
            self.residual_tests.get() as f64 / p
        }
    }
}

/// Trigger-cache counters.
#[derive(Debug, Default, Clone)]
pub struct CacheStats {
    /// Pin requests satisfied from memory.
    pub hits: Arc<Counter>,
    /// Pin requests that loaded from the catalog.
    pub misses: Arc<Counter>,
    /// Cached triggers discarded by LRU.
    pub evictions: Arc<Counter>,
    /// Total pin calls (hits + misses, counted at the pin entry point so
    /// the invariant `pins == hits + misses` is testable).
    pub pins: Arc<Counter>,
}

impl CacheStats {
    /// Hit rate in \[0,1\]; zero when nothing was pinned yet.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits.get() as f64;
        let m = self.misses.get() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.bump();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn cache_hit_rate() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits.add(3);
        s.misses.add(1);
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn stats_clone_shares_counters() {
        let s = IndexStats::default();
        let t = s.clone();
        s.probes.add(2);
        s.residual_tests.bump();
        assert_eq!(t.probes.get(), 2);
        assert!((s.retest_rate() - 0.5).abs() < 1e-9);
    }
}
