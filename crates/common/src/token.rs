//! Update descriptors (tokens).
//!
//! §5.4: "an update descriptor (token) consists of a data source ID, an
//! operation code, and an old tuple, new tuple, or old/new tuple pair."

use crate::error::{Result, TmanError};
use crate::fxhash::FxHashSet;
use crate::ids::DataSourceId;
use crate::tuple::Tuple;
use std::fmt;
use std::sync::{Arc, Mutex};
use tman_telemetry::TraceHandle;

/// Operation code carried by a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenOp {
    /// A new tuple was inserted (carries `new`).
    Insert,
    /// A tuple was deleted (carries `old`).
    Delete,
    /// A tuple was updated (carries `old` and `new`).
    Update,
}

impl TokenOp {
    /// Catalog encoding (stable across restarts).
    pub fn code(self) -> u8 {
        match self {
            TokenOp::Insert => 0,
            TokenOp::Delete => 1,
            TokenOp::Update => 2,
        }
    }

    /// Decode the catalog encoding.
    pub fn from_code(c: u8) -> Result<TokenOp> {
        match c {
            0 => Ok(TokenOp::Insert),
            1 => Ok(TokenOp::Delete),
            2 => Ok(TokenOp::Update),
            _ => Err(TmanError::Storage(format!("bad token op code {c}"))),
        }
    }
}

impl fmt::Display for TokenOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenOp::Insert => write!(f, "insert"),
            TokenOp::Delete => write!(f, "delete"),
            TokenOp::Update => write!(f, "update"),
        }
    }
}

/// Event condition attached to a signature or trigger (`on` clause).
///
/// §5: the operation code of an expression signature is "insert, delete,
/// update, or insertOrUpdate"; a tuple variable with no `on` event is
/// implicitly *insert or update*.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// `on insert to S`
    Insert,
    /// `on delete from S`
    Delete,
    /// `on update(S.a, S.b)` — empty column list means "any column".
    Update(Vec<String>),
    /// Implicit event when no `on` clause names the tuple variable.
    InsertOrUpdate,
    /// Accepts every operation. Not part of the paper's opcode set: used by
    /// the engine to route *maintenance* tokens (including deletes) to
    /// triggers whose discrimination networks keep stored memories
    /// (TREAT/Rete); event filtering then happens at action time.
    Any,
}

impl EventKind {
    /// Signature operation-code byte (update column lists are part of the
    /// signature description, not the opcode).
    pub fn opcode(&self) -> u8 {
        match self {
            EventKind::Insert => 0,
            EventKind::Delete => 1,
            EventKind::Update(_) => 2,
            EventKind::InsertOrUpdate => 3,
            EventKind::Any => 4,
        }
    }

    /// Does a token with operation `op` satisfy this event condition?
    ///
    /// Column-level update events (`update(emp.salary)`) additionally
    /// require one of the named columns to have changed; that check needs
    /// the schema and both tuples, so it is performed by
    /// [`UpdateDescriptor::touches_columns`] at match time.
    pub fn accepts(&self, op: TokenOp) -> bool {
        match self {
            EventKind::Insert => op == TokenOp::Insert,
            EventKind::Delete => op == TokenOp::Delete,
            EventKind::Update(_) => op == TokenOp::Update,
            EventKind::InsertOrUpdate => op == TokenOp::Insert || op == TokenOp::Update,
            EventKind::Any => true,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Insert => write!(f, "insert"),
            EventKind::Delete => write!(f, "delete"),
            EventKind::Update(cols) if cols.is_empty() => write!(f, "update"),
            EventKind::Update(cols) => write!(f, "update({})", cols.join(",")),
            EventKind::InsertOrUpdate => write!(f, "insertOrUpdate"),
            EventKind::Any => write!(f, "any"),
        }
    }
}

/// Per-token claim set for *tagged execution* of indexed disjunctions
/// (Kim & Madden). An OR-trigger registers one predicate-index entry per
/// selectable disjunct; all of its entries carry the same tag. Whichever
/// entry's probe reaches the token first *claims* the tag; later hits on
/// the same tag for the same token are duplicates of the same logical
/// match and must not fire again.
///
/// The set is shared by `Arc`, so every task cloned from the token —
/// partition fan-out tasks included — claims against the same set and the
/// dedup is exactly-once across shards. The inert form ([`none`]) carries
/// no allocation and lets every claim succeed; the engine only arms a
/// token ([`fresh`]) while tagged entries exist, so untagged workloads pay
/// nothing.
///
/// [`none`]: Self::none
/// [`fresh`]: Self::fresh
#[derive(Debug, Clone, Default)]
pub struct TagClaims(Option<Arc<Mutex<FxHashSet<u64>>>>);

impl TagClaims {
    /// Inert claims: no set allocated, every [`claim`](Self::claim) is true.
    pub fn none() -> TagClaims {
        TagClaims(None)
    }

    /// A fresh shared claim set for one token.
    pub fn fresh() -> TagClaims {
        TagClaims(Some(Arc::new(Mutex::new(FxHashSet::default()))))
    }

    /// Is a claim set armed on this token?
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Claim `tag` for this token. Returns true exactly once per
    /// `(token, tag)` when armed; always true when inert.
    pub fn claim(&self, tag: u64) -> bool {
        match &self.0 {
            Some(set) => set.lock().expect("claims poisoned").insert(tag),
            None => true,
        }
    }
}

/// The paper's *token*: one captured update flowing through the system.
///
/// Equality ignores the [`trace`](Self::trace) handle — it is execution
/// metadata riding along with the token, not part of its identity.
#[derive(Debug, Clone)]
pub struct UpdateDescriptor {
    /// Source the update happened on.
    pub data_src: DataSourceId,
    /// What happened.
    pub op: TokenOp,
    /// Pre-image (`:OLD`); present for delete and update.
    pub old: Option<Tuple>,
    /// Post-image (`:NEW`); present for insert and update.
    pub new: Option<Tuple>,
    /// Per-token trace lineage (inert unless the engine is tracing). The
    /// handle is cloned into every task spawned for this token, so the
    /// trace finalizes when the last task finishes. Not serialized by
    /// [`encode`](Self::encode).
    pub trace: TraceHandle,
    /// Durable origin of this token — the persistent-queue sequence number
    /// it was dequeued under, if any. Downstream delivery tiers use it to
    /// deduplicate redelivered tokens after a crash. Like `trace`, this is
    /// execution metadata: ignored by equality and not serialized.
    pub origin: Option<i64>,
    /// Wall-clock ingest stamp (ns since the Unix epoch), 0 when unknown.
    /// Stamped where the token entered the system (the wire server on
    /// decode, or the client's send stamp when the peer supplies one) and
    /// carried through the persistent queue so end-to-end ingest→fire
    /// latency survives a restart. Execution metadata: ignored by equality,
    /// but — unlike `trace` — serialized by [`encode`](Self::encode).
    pub ingest_unix_ns: u64,
    /// Tagged-execution claim set (see [`TagClaims`]). Execution metadata
    /// like `trace`: ignored by equality, not serialized; the engine arms
    /// it on ingest while tagged disjunction entries exist.
    pub claims: TagClaims,
}

impl PartialEq for UpdateDescriptor {
    fn eq(&self, other: &UpdateDescriptor) -> bool {
        self.data_src == other.data_src
            && self.op == other.op
            && self.old == other.old
            && self.new == other.new
    }
}

impl UpdateDescriptor {
    /// Insert token.
    pub fn insert(data_src: DataSourceId, new: Tuple) -> UpdateDescriptor {
        UpdateDescriptor {
            data_src,
            op: TokenOp::Insert,
            old: None,
            new: Some(new),
            trace: TraceHandle::none(),
            origin: None,
            ingest_unix_ns: 0,
            claims: TagClaims::none(),
        }
    }

    /// Delete token.
    pub fn delete(data_src: DataSourceId, old: Tuple) -> UpdateDescriptor {
        UpdateDescriptor {
            data_src,
            op: TokenOp::Delete,
            old: Some(old),
            new: None,
            trace: TraceHandle::none(),
            origin: None,
            ingest_unix_ns: 0,
            claims: TagClaims::none(),
        }
    }

    /// Update token (old/new pair).
    pub fn update(data_src: DataSourceId, old: Tuple, new: Tuple) -> UpdateDescriptor {
        UpdateDescriptor {
            data_src,
            op: TokenOp::Update,
            old: Some(old),
            new: Some(new),
            trace: TraceHandle::none(),
            origin: None,
            ingest_unix_ns: 0,
            claims: TagClaims::none(),
        }
    }

    /// The tuple selection predicates are evaluated against: the new image
    /// for inserts/updates, the old image for deletes.
    #[inline]
    pub fn probe_tuple(&self) -> &Tuple {
        match self.op {
            TokenOp::Insert | TokenOp::Update => self.new.as_ref().expect("new image"),
            TokenOp::Delete => self.old.as_ref().expect("old image"),
        }
    }

    /// For an update token, did any of the given column ordinals change
    /// value? Vacuously true for non-update tokens and for an empty list.
    pub fn touches_columns(&self, cols: &[usize]) -> bool {
        if self.op != TokenOp::Update || cols.is_empty() {
            return true;
        }
        let (old, new) = (
            self.old.as_ref().expect("old image"),
            self.new.as_ref().expect("new image"),
        );
        cols.iter().any(|&c| old.get(c) != new.get(c))
    }

    /// Serialize (for the persistent update-descriptor queue table).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.data_src.raw().to_le_bytes());
        out.push(self.op.code());
        let mut flags = 0u8;
        if self.old.is_some() {
            flags |= 1;
        }
        if self.new.is_some() {
            flags |= 2;
        }
        if self.ingest_unix_ns != 0 {
            flags |= 4;
        }
        out.push(flags);
        if let Some(t) = &self.old {
            t.encode_into(&mut out);
        }
        if let Some(t) = &self.new {
            t.encode_into(&mut out);
        }
        if self.ingest_unix_ns != 0 {
            out.extend_from_slice(&self.ingest_unix_ns.to_le_bytes());
        }
        out
    }

    /// Deserialize (inverse of [`encode`](Self::encode)).
    pub fn decode(buf: &[u8]) -> Result<UpdateDescriptor> {
        if buf.len() < 6 {
            return Err(TmanError::Storage("truncated update descriptor".into()));
        }
        let data_src = DataSourceId(u32::from_le_bytes(buf[0..4].try_into().unwrap()));
        let op = TokenOp::from_code(buf[4])?;
        let flags = buf[5];
        let mut cursor = 6;
        let old = if flags & 1 != 0 {
            Some(Tuple::decode_from(buf, &mut cursor)?)
        } else {
            None
        };
        let new = if flags & 2 != 0 {
            Some(Tuple::decode_from(buf, &mut cursor)?)
        } else {
            None
        };
        let ingest_unix_ns = if flags & 4 != 0 {
            if buf.len() < cursor + 8 {
                return Err(TmanError::Storage("truncated ingest stamp".into()));
            }
            let v = u64::from_le_bytes(buf[cursor..cursor + 8].try_into().unwrap());
            cursor += 8;
            v
        } else {
            0
        };
        if cursor != buf.len() {
            return Err(TmanError::Storage(
                "trailing bytes in update descriptor".into(),
            ));
        }
        Ok(UpdateDescriptor {
            data_src,
            op,
            old,
            new,
            trace: TraceHandle::none(),
            origin: None,
            ingest_unix_ns,
            claims: TagClaims::none(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn tup(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn event_acceptance_matrix() {
        assert!(EventKind::Insert.accepts(TokenOp::Insert));
        assert!(!EventKind::Insert.accepts(TokenOp::Update));
        assert!(EventKind::Delete.accepts(TokenOp::Delete));
        assert!(EventKind::Update(vec![]).accepts(TokenOp::Update));
        assert!(!EventKind::Update(vec![]).accepts(TokenOp::Insert));
        assert!(EventKind::InsertOrUpdate.accepts(TokenOp::Insert));
        assert!(EventKind::InsertOrUpdate.accepts(TokenOp::Update));
        assert!(!EventKind::InsertOrUpdate.accepts(TokenOp::Delete));
    }

    #[test]
    fn probe_tuple_picks_correct_image() {
        let ins = UpdateDescriptor::insert(DataSourceId(1), tup(&[1]));
        assert_eq!(ins.probe_tuple(), &tup(&[1]));
        let del = UpdateDescriptor::delete(DataSourceId(1), tup(&[2]));
        assert_eq!(del.probe_tuple(), &tup(&[2]));
        let upd = UpdateDescriptor::update(DataSourceId(1), tup(&[3]), tup(&[4]));
        assert_eq!(upd.probe_tuple(), &tup(&[4]));
    }

    #[test]
    fn touches_columns_detects_changes() {
        let upd = UpdateDescriptor::update(DataSourceId(1), tup(&[1, 2, 3]), tup(&[1, 9, 3]));
        assert!(upd.touches_columns(&[1]));
        assert!(!upd.touches_columns(&[0, 2]));
        assert!(upd.touches_columns(&[])); // empty = any column
        let ins = UpdateDescriptor::insert(DataSourceId(1), tup(&[1]));
        assert!(ins.touches_columns(&[0])); // non-update: vacuous
    }

    #[test]
    fn encode_decode_roundtrip_all_ops() {
        for d in [
            UpdateDescriptor::insert(DataSourceId(5), tup(&[1, 2])),
            UpdateDescriptor::delete(DataSourceId(5), tup(&[3])),
            UpdateDescriptor::update(DataSourceId(9), tup(&[1]), tup(&[2])),
        ] {
            assert_eq!(UpdateDescriptor::decode(&d.encode()).unwrap(), d);
        }
    }

    #[test]
    fn equality_ignores_trace_handle() {
        use std::sync::Arc;
        let tracer = Arc::new(tman_telemetry::Tracer::new(
            64,
            1,
            std::time::Duration::ZERO,
        ));
        let plain = UpdateDescriptor::insert(DataSourceId(1), tup(&[1]));
        let mut traced = plain.clone();
        traced.trace = tracer.begin();
        assert!(traced.trace.is_active());
        assert_eq!(plain, traced);
        // And the round-trip through the persistent-queue codec drops the
        // handle without affecting token identity.
        let decoded = UpdateDescriptor::decode(&traced.encode()).unwrap();
        assert!(!decoded.trace.is_active());
        assert_eq!(decoded, traced);
    }

    #[test]
    fn tag_claims_claim_once_and_shared_across_clones() {
        let inert = TagClaims::none();
        assert!(!inert.is_active());
        assert!(inert.claim(7));
        assert!(inert.claim(7)); // inert: always true

        let armed = TagClaims::fresh();
        assert!(armed.is_active());
        assert!(armed.claim(7));
        assert!(!armed.claim(7)); // second hit on the same tag is a dup
        assert!(armed.claim(8)); // distinct tag claims independently
                                 // A cloned token (fan-out task) shares the same claim set.
        let cloned = armed.clone();
        assert!(!cloned.claim(7));
        assert!(cloned.claim(9));
        assert!(!armed.claim(9));
    }

    #[test]
    fn token_claims_are_execution_metadata() {
        let plain = UpdateDescriptor::insert(DataSourceId(1), tup(&[1]));
        let mut armed = plain.clone();
        armed.claims = TagClaims::fresh();
        assert_eq!(plain, armed); // equality ignores claims
        let decoded = UpdateDescriptor::decode(&armed.encode()).unwrap();
        assert!(!decoded.claims.is_active()); // codec drops them
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(UpdateDescriptor::decode(&[]).is_err());
        assert!(UpdateDescriptor::decode(&[0, 0, 0, 0, 9, 0]).is_err()); // bad op
        let mut good = UpdateDescriptor::insert(DataSourceId(1), tup(&[1])).encode();
        good.push(0);
        assert!(UpdateDescriptor::decode(&good).is_err()); // trailing byte
    }
}
