//! A vendored FxHash-style hasher.
//!
//! The predicate index performs a hash lookup per token per signature; the
//! default SipHash is measurably slower for the short integer/string keys we
//! hash there. This is the classic Firefox/rustc "Fx" multiply-and-rotate
//! hash — low quality but very fast, and HashDoS is not a concern for an
//! in-process trigger engine. Vendored (~40 lines) instead of adding a
//! dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast, non-cryptographic hasher (the rustc/Firefox "Fx" hash).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash one hashable value to a `u64` with [`FxHasher`].
pub fn hash_one<T: std::hash::Hash>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_ne!(hash_one(&42u64), hash_one(&43u64));
    }

    #[test]
    fn strings_differ() {
        assert_ne!(hash_one(&"abc"), hash_one(&"abd"));
        assert_ne!(hash_one(&"abc"), hash_one(&"ab"));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("k{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m["k512"], 512);
    }

    #[test]
    fn unaligned_tail_bytes_distinguish_lengths() {
        // Regression guard for the remainder-handling path: a trailing zero
        // byte must hash differently from no trailing byte.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 0]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(a.finish(), b.finish());
    }
}
