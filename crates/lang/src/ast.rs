//! Abstract syntax for the TriggerMan command language and the SQL subset.

use std::fmt;
use tman_common::DataType;

/// A literal constant in an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `NULL`.
    Null,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators, in one enum since TriggerMan predicates freely mix
/// boolean and arithmetic subexpressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Logical AND / OR.
    And,
    Or,
    /// Comparisons.
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// SQL `LIKE` with `%` / `_` wildcards.
    Like,
    /// Arithmetic.
    Add,
    Sub,
    Mul,
    Div,
}

impl BinaryOp {
    /// Is this a comparison producing a boolean from two scalars?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::Like
        )
    }

    /// Keyword/symbol for diagnostics and signature descriptions.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::And => "and",
            BinaryOp::Or => "or",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Like => "like",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }
}

/// An unresolved expression as parsed (resolution against schemas happens
/// in `tman-expr`).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Literal(Literal),
    /// `qualifier.column` or bare `column`.
    Column {
        /// Tuple-variable or table qualifier, if written.
        qualifier: Option<String>,
        /// Column name.
        column: String,
    },
    /// `:NEW.source.column` / `:OLD.source.column` transition reference
    /// (only legal inside rule actions).
    Transition {
        /// True for `:NEW`, false for `:OLD`.
        new: bool,
        /// Data-source (tuple-variable) name.
        source: String,
        /// Column name.
        column: String,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call, e.g. `abs(x)`.
    Call {
        /// Function name (case-insensitive).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience: `left op right`.
    pub fn bin(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                // Keep floats re-parseable as floats (always show a point
                // or exponent).
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "null"),
        }
    }
}

/// Fully parenthesized rendering: `parse(expr.to_string())` reproduces the
/// same tree regardless of operator precedence (property-tested).
impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Column {
                qualifier: Some(q),
                column,
            } => write!(f, "{q}.{column}"),
            Expr::Column {
                qualifier: None,
                column,
            } => write!(f, "{column}"),
            Expr::Transition {
                new,
                source,
                column,
            } => {
                write!(f, ":{}.{source}.{column}", if *new { "NEW" } else { "OLD" })
            }
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => write!(f, "(not {expr})"),
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => write!(f, "(-{expr})"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An item in a trigger's `from` list: a data source with an optional
/// tuple-variable alias (`from salesperson s` → source `salesperson`,
/// alias `s`).
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// Data-source name.
    pub source: String,
    /// Tuple-variable alias (defaults to the source name).
    pub alias: Option<String>,
}

impl FromItem {
    /// The name this item binds in the trigger's scope.
    pub fn var_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.source)
    }
}

/// The `on` clause event specification.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Which kind of update event.
    pub kind: EventSpecKind,
    /// The tuple variable / data source it applies to.
    pub target: String,
}

/// Kinds of `on` events.
#[derive(Debug, Clone, PartialEq)]
pub enum EventSpecKind {
    /// `on insert to X`.
    Insert,
    /// `on delete from X`.
    Delete,
    /// `on update(X.a, X.b)` or `on update to X` (empty column list).
    Update(Vec<String>),
}

/// A trigger action (`do` clause).
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `do execSQL '<sql>'` — run a SQL statement against the database,
    /// after `:NEW`/`:OLD` macro substitution (§2).
    ExecSql(String),
    /// `do raise event Name(args...)` — notify registered clients (\[Hans98\]).
    RaiseEvent {
        /// Event name.
        name: String,
        /// Argument expressions over the trigger's tuple variables.
        args: Vec<Expr>,
    },
    /// `do notify 'message'` — convenience console notification carrying a
    /// message template with `:NEW`/`:OLD` macro substitution.
    Notify(String),
}

/// Windowed-threshold clause: `count >= K within <duration>` — the
/// trigger fires only while at least `count` matching events arrived
/// inside the trailing window (Bonifati et al., "Threshold Queries in
/// Theory and in the Wild").
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    /// Threshold `K` (>= 1).
    pub count: u64,
    /// Window width in nanoseconds (> 0).
    pub within_ns: u64,
}

/// `create trigger` statement (§2).
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTrigger {
    /// Trigger name.
    pub name: String,
    /// `in setName` — optional trigger set.
    pub set: Option<String>,
    /// Data sources with optional aliases.
    pub from: Vec<FromItem>,
    /// Optional event condition.
    pub on: Option<EventSpec>,
    /// Optional `when` condition.
    pub when: Option<Expr>,
    /// Optional windowed threshold (`when [pred] count >= K within W`).
    pub window: Option<WindowSpec>,
    /// `group by` expressions (parsed; rejected by the engine per §9
    /// future work).
    pub group_by: Vec<Expr>,
    /// `having` condition (parsed; rejected likewise).
    pub having: Option<Expr>,
    /// The action.
    pub action: Action,
}

/// One column definition in `define data source` / `create table`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

/// A TriggerMan command.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // CreateTrigger dominates by design
pub enum Command {
    /// `create trigger ...`.
    CreateTrigger(CreateTrigger),
    /// `drop trigger <name>`.
    DropTrigger(String),
    /// `create trigger set <name>`.
    CreateTriggerSet(String),
    /// `drop trigger set <name>`.
    DropTriggerSet(String),
    /// `enable trigger <name>` / `disable trigger <name>`.
    SetTriggerEnabled {
        /// Trigger name.
        name: String,
        /// Enable or disable.
        enabled: bool,
    },
    /// `enable trigger set <name>` / `disable trigger set <name>`.
    SetTriggerSetEnabled {
        /// Set name.
        name: String,
        /// Enable or disable.
        enabled: bool,
    },
    /// `define data source <name> (col type, ...)` — a remote/stream source
    /// with an explicit schema, or
    /// `define data source <name> from table <table>` — a local table with
    /// automatic update capture (§3). `via <connection>` attaches the
    /// source to a named connection (defaults to the default connection).
    DefineDataSource {
        /// Source name.
        name: String,
        /// Explicit schema (remote/stream sources).
        columns: Option<Vec<ColumnDef>>,
        /// Local table to capture updates from.
        from_table: Option<String>,
        /// Connection the source lives on (`None` = default connection).
        connection: Option<String>,
    },
    /// `define connection <name> type '<dbtype>' [host '<h>'] [server '<s>']
    /// [user '<u>'] [password '<p>'] [default]` — §2: "a connection to a
    /// local Informix database, a remote database, or a generic data source
    /// program ... A single connection is designated as the default
    /// connection."
    DefineConnection(ConnectionDef),
    /// `show stats [<subsystem>]` — dump engine metrics, optionally limited
    /// to one subsystem (engine, queue, driver, index, cache, storage,
    /// actions).
    ShowStats {
        /// Subsystem filter (`None` = everything).
        subsystem: Option<String>,
    },
    /// `trace last <n>` — render the `n` most recently retained per-token
    /// trace trees.
    TraceLast {
        /// How many traces, newest last.
        n: usize,
    },
    /// `trace token <id>` — render the retained trace tree of one token
    /// (ids appear in `trace last` output).
    TraceToken {
        /// The trace id.
        id: u64,
    },
}

/// Connection description (§2): "information about the host name where the
/// database resides, the type of database system running ..., the name of
/// the database server, a user ID, and a password."
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionDef {
    /// Connection name (unique).
    pub name: String,
    /// Database system type (informix, oracle, sybase, db2, ... — or
    /// `local` for this engine's own database).
    pub dbtype: String,
    /// Host name.
    pub host: Option<String>,
    /// Database server name.
    pub server: Option<String>,
    /// User id.
    pub user: Option<String>,
    /// Password.
    pub password: Option<String>,
    /// Designate as the default connection.
    pub is_default: bool,
}

/// Column list of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectCols {
    /// `SELECT *`.
    Star,
    /// Explicit expressions.
    Exprs(Vec<Expr>),
}

/// A statement in the SQL subset executed by `execSQL` actions and used
/// internally for catalogs and constant tables.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlStmt {
    /// `CREATE TABLE t (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Columns.
        columns: Vec<ColumnDef>,
    },
    /// `DROP TABLE t`.
    DropTable(String),
    /// `CREATE INDEX i ON t (cols...)`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Table name.
        table: String,
        /// Indexed columns, in key order.
        columns: Vec<String>,
    },
    /// `INSERT INTO t VALUES (...)`.
    Insert {
        /// Table name.
        table: String,
        /// One row of value expressions (must be constant-foldable).
        values: Vec<Expr>,
    },
    /// `UPDATE t SET a = e, ... [WHERE p]`.
    Update {
        /// Table name.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE p]`.
    Delete {
        /// Table name.
        table: String,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `SELECT cols FROM t [WHERE p]`.
    Select {
        /// Projection.
        cols: SelectCols,
        /// Table name.
        table: String,
        /// Row filter.
        filter: Option<Expr>,
    },
}
