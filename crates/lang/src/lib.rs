//! `tman-lang` — the TriggerMan command language and SQL subset.
//!
//! §2 of the paper: "Commands in TriggerMan have a keyword-delimited,
//! SQL-like syntax." This crate provides:
//!
//! * [`lexer`] — a shared tokenizer (case-insensitive keywords, `'...'`
//!   string literals with `''` escapes, `:NEW` / `:OLD` transition refs),
//! * [`ast`] — commands (`create trigger`, `drop trigger`, `define data
//!   source`, ...), scalar/boolean expressions, and the SQL-subset
//!   statements used by `execSQL` rule actions,
//! * [`parser`] — recursive-descent parsers for both languages.
//!
//! The paper's running examples parse verbatim, e.g.:
//!
//! ```
//! use tman_lang::parse_command;
//! let cmd = parse_command(
//!     "create trigger IrisHouseAlert on insert to house \
//!      from salesperson s, house h, represents r \
//!      when s.name = 'Iris' and s.spno=r.spno and r.nno=h.nno \
//!      do raise event NewHouseInIrisNeighborhood(h.hno, h.address)",
//! ).unwrap();
//! assert!(matches!(cmd, tman_lang::ast::Command::CreateTrigger(_)));
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Action, Command, CreateTrigger, Expr, SqlStmt};
pub use parser::{parse_command, parse_expression, parse_sql};
