//! Tokenizer shared by the TriggerMan command language and the SQL subset.

use std::fmt;
use tman_common::{Result, TmanError};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized case-insensitively by
    /// the parser, not the lexer, since TriggerMan identifiers may collide
    /// with keywords in other positions).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (`'...'`, with `''` escaping a quote).
    Str(String),
    /// `:NEW` / `:OLD` sigil (the following `.source.column` path is parsed
    /// by the parser).
    Colon,
    /// Punctuation / operators.
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Semi,
}

impl Token {
    /// Is this an identifier equal (case-insensitively) to `kw`?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Colon => write!(f, ":"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Semi => write!(f, ";"),
        }
    }
}

/// Tokenize `input`. Errors carry the byte offset of the offending char.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                // SQL-style line comment.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'.' if !(i + 1 < b.len() && b[i + 1].is_ascii_digit()) => {
                out.push(Token::Dot);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b';' => {
                out.push(Token::Semi);
                i += 1;
            }
            b':' => {
                out.push(Token::Colon);
                i += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Token::Ne);
                i += 2;
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'\'' => {
                let mut s: Vec<u8> = Vec::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return Err(TmanError::Parse(format!(
                            "unterminated string literal at offset {i}"
                        )));
                    }
                    if b[i] == b'\'' {
                        if i + 1 < b.len() && b[i + 1] == b'\'' {
                            s.push(b'\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(b[i]);
                        i += 1;
                    }
                }
                out.push(Token::Str(String::from_utf8(s).map_err(|e| {
                    TmanError::Parse(format!("invalid utf8 in string literal: {e}"))
                })?));
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < b.len() {
                    match b[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !saw_dot && !saw_exp => {
                            saw_dot = true;
                            i += 1;
                        }
                        b'e' | b'E' if !saw_exp && i > start => {
                            saw_exp = true;
                            i += 1;
                            if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                if saw_dot || saw_exp {
                    out.push(Token::Float(text.parse().map_err(|e| {
                        TmanError::Parse(format!("bad float '{text}': {e}"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|e| {
                        TmanError::Parse(format!("bad integer '{text}': {e}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            c => {
                return Err(TmanError::Parse(format!(
                    "unexpected character '{}' at offset {i}",
                    c as char
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("create trigger t1 when emp.salary >= 80000.5 do x").unwrap();
        assert_eq!(toks[0], Token::Ident("create".into()));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Float(80000.5)));
        assert!(toks.contains(&Token::Dot));
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = tokenize("'it''s' 'two'").unwrap();
        assert_eq!(
            toks,
            vec![Token::Str("it's".into()), Token::Str("two".into())]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("= != <> < <= > >=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge
            ]
        );
    }

    #[test]
    fn transition_refs_tokenize_as_colon_path() {
        let toks = tokenize(":NEW.emp.salary").unwrap();
        assert_eq!(toks[0], Token::Colon);
        assert!(toks[1].is_kw("new"));
    }

    #[test]
    fn numbers_int_float_exponent() {
        let toks = tokenize("42 3.5 1e3 2.5E-2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Float(3.5),
                Token::Float(1000.0),
                Token::Float(0.025)
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("a -- comment here\n b").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        assert!(Token::Ident("CrEaTe".into()).is_kw("create"));
        assert!(!Token::Ident("created".into()).is_kw("create"));
    }

    #[test]
    fn bad_chars_error_with_offset() {
        let err = tokenize("a ยง b").unwrap_err();
        assert!(matches!(err, TmanError::Parse(_)));
    }
}
