//! Recursive-descent parsers for TriggerMan commands, expressions, and the
//! SQL subset.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use tman_common::{DataType, Result, TmanError};

/// Parse one TriggerMan command.
pub fn parse_command(input: &str) -> Result<Command> {
    let mut p = Parser::new(input)?;
    let cmd = p.command()?;
    p.expect_end()?;
    Ok(cmd)
}

/// Parse a standalone expression (tests, console `eval`).
pub fn parse_expression(input: &str) -> Result<Expr> {
    let mut p = Parser::new(input)?;
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

/// Parse one SQL statement (the `execSQL` subset).
pub fn parse_sql(input: &str) -> Result<SqlStmt> {
    let mut p = Parser::new(input)?;
    let s = p.sql_stmt()?;
    // Allow a trailing semicolon.
    p.eat(&Token::Semi);
    p.expect_end()?;
    Ok(s)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser> {
        Ok(Parser {
            toks: tokenize(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| TmanError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{t}'")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            t => Err(TmanError::Parse(format!(
                "expected identifier, found '{t}'"
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.next()? {
            Token::Str(s) => Ok(s),
            t => Err(TmanError::Parse(format!(
                "expected string literal, found '{t}'"
            ))),
        }
    }

    fn int_literal(&mut self) -> Result<i64> {
        match self.next()? {
            Token::Int(i) => Ok(i),
            t => Err(TmanError::Parse(format!(
                "expected integer literal, found '{t}'"
            ))),
        }
    }

    fn expect_end(&self) -> Result<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(TmanError::Parse(format!("trailing input at '{t}'"))),
        }
    }

    fn err(&self, msg: &str) -> TmanError {
        match self.peek() {
            Some(t) => TmanError::Parse(format!("{msg}, found '{t}'")),
            None => TmanError::Parse(format!("{msg}, found end of input")),
        }
    }

    // ----- commands ------------------------------------------------------

    fn command(&mut self) -> Result<Command> {
        if self.eat_kw("create") {
            self.expect_kw("trigger")?;
            // `create trigger set NAME` vs a trigger literally named "set":
            // a trigger definition must continue with a clause keyword, so
            // `set` followed by a bare identifier at the end or another
            // identifier is a trigger-set creation.
            if self.peek_kw("set") && matches!(self.peek2(), Some(Token::Ident(_))) {
                self.pos += 1;
                return Ok(Command::CreateTriggerSet(self.ident()?));
            }
            return Ok(Command::CreateTrigger(self.create_trigger()?));
        }
        if self.eat_kw("drop") {
            self.expect_kw("trigger")?;
            if self.peek_kw("set") && matches!(self.peek2(), Some(Token::Ident(_))) {
                self.pos += 1;
                return Ok(Command::DropTriggerSet(self.ident()?));
            }
            return Ok(Command::DropTrigger(self.ident()?));
        }
        for (kw, enabled) in [("enable", true), ("disable", false)] {
            if self.peek_kw(kw) {
                self.pos += 1;
                self.expect_kw("trigger")?;
                if self.peek_kw("set") && matches!(self.peek2(), Some(Token::Ident(_))) {
                    self.pos += 1;
                    return Ok(Command::SetTriggerSetEnabled {
                        name: self.ident()?,
                        enabled,
                    });
                }
                return Ok(Command::SetTriggerEnabled {
                    name: self.ident()?,
                    enabled,
                });
            }
        }
        if self.eat_kw("show") {
            self.expect_kw("stats")?;
            let subsystem = match self.peek() {
                Some(Token::Ident(_)) => Some(self.ident()?),
                _ => None,
            };
            return Ok(Command::ShowStats { subsystem });
        }
        if self.eat_kw("trace") {
            if self.eat_kw("last") {
                let n = self.int_literal()?;
                if n < 1 {
                    return Err(TmanError::Parse("trace last needs a count >= 1".into()));
                }
                return Ok(Command::TraceLast { n: n as usize });
            }
            self.expect_kw("token")?;
            let id = self.int_literal()?;
            if id < 0 {
                return Err(TmanError::Parse("trace ids are non-negative".into()));
            }
            return Ok(Command::TraceToken { id: id as u64 });
        }
        if self.eat_kw("define") {
            if self.eat_kw("connection") {
                return self.define_connection();
            }
            self.expect_kw("data")?;
            self.expect_kw("source")?;
            let name = self.ident()?;
            if self.eat(&Token::LParen) {
                let columns = self.column_defs()?;
                self.expect(&Token::RParen)?;
                let connection = self.opt_via()?;
                return Ok(Command::DefineDataSource {
                    name,
                    columns: Some(columns),
                    from_table: None,
                    connection,
                });
            }
            if self.eat_kw("from") {
                self.expect_kw("table")?;
                let table = self.ident()?;
                let connection = self.opt_via()?;
                return Ok(Command::DefineDataSource {
                    name,
                    columns: None,
                    from_table: Some(table),
                    connection,
                });
            }
            return Err(self.err("expected '(' schema or 'from table'"));
        }
        Err(self.err("expected a TriggerMan command"))
    }

    fn opt_via(&mut self) -> Result<Option<String>> {
        if self.eat_kw("via") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn define_connection(&mut self) -> Result<Command> {
        let name = self.ident()?;
        let mut def = ConnectionDef {
            name,
            dbtype: "local".into(),
            host: None,
            server: None,
            user: None,
            password: None,
            is_default: false,
        };
        loop {
            if self.eat_kw("type") {
                def.dbtype = self.string()?;
            } else if self.eat_kw("host") {
                def.host = Some(self.string()?);
            } else if self.eat_kw("server") {
                def.server = Some(self.string()?);
            } else if self.eat_kw("user") {
                def.user = Some(self.string()?);
            } else if self.eat_kw("password") {
                def.password = Some(self.string()?);
            } else if self.eat_kw("default") {
                def.is_default = true;
            } else {
                break;
            }
        }
        Ok(Command::DefineConnection(def))
    }

    fn create_trigger(&mut self) -> Result<CreateTrigger> {
        let name = self.ident()?;
        let mut t = CreateTrigger {
            name,
            set: None,
            from: Vec::new(),
            on: None,
            when: None,
            window: None,
            group_by: Vec::new(),
            having: None,
            action: Action::Notify(String::new()),
        };
        if self.eat_kw("in") {
            t.set = Some(self.ident()?);
        }
        // §2 shows from/on/when in that order, but the IrisHouseAlert
        // example puts `on` before `from`; accept the clauses in any order.
        loop {
            if self.eat_kw("from") {
                loop {
                    let source = self.ident()?;
                    let alias = match self.peek() {
                        Some(Token::Ident(s)) if !is_clause_kw(s) => Some(self.ident()?),
                        _ => None,
                    };
                    t.from.push(FromItem { source, alias });
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            } else if self.eat_kw("on") {
                t.on = Some(self.event_spec()?);
            } else if self.eat_kw("when") {
                // `when count >= K within W` is a pure windowed threshold;
                // `when <pred> count >= K within W` filters first. The
                // window form is recognized only as `count` followed by
                // `>=`, so a bare column named `count` still parses inside
                // the predicate (e.g. `when count = 5`).
                if self.peek_kw("count") && self.peek2() == Some(&Token::Ge) {
                    t.window = Some(self.window_spec()?);
                } else {
                    t.when = Some(self.expr()?);
                    if self.peek_kw("count") && self.peek2() == Some(&Token::Ge) {
                        t.window = Some(self.window_spec()?);
                    }
                }
            } else if self.peek_kw("group") {
                self.pos += 1;
                self.expect_kw("by")?;
                loop {
                    t.group_by.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            } else if self.eat_kw("having") {
                t.having = Some(self.expr()?);
            } else if self.eat_kw("do") {
                t.action = self.action()?;
                return Ok(t);
            } else {
                return Err(self.err("expected trigger clause or 'do'"));
            }
        }
    }

    /// `count >= K within N <unit>` — the windowed-threshold clause.
    fn window_spec(&mut self) -> Result<WindowSpec> {
        self.expect_kw("count")?;
        self.expect(&Token::Ge)?;
        let count = self.int_literal()?;
        if count < 1 {
            return Err(TmanError::Parse(
                "window threshold count must be >= 1".into(),
            ));
        }
        self.expect_kw("within")?;
        let amount = self.int_literal()?;
        if amount < 1 {
            return Err(TmanError::Parse("window duration must be positive".into()));
        }
        let unit = self.ident()?;
        let per_ns: u64 = match unit.to_ascii_lowercase().as_str() {
            "ms" | "millisecond" | "milliseconds" => 1_000_000,
            "s" | "sec" | "secs" | "second" | "seconds" => 1_000_000_000,
            "min" | "mins" | "minute" | "minutes" => 60_000_000_000,
            "h" | "hour" | "hours" => 3_600_000_000_000,
            other => {
                return Err(TmanError::Parse(format!(
                    "unknown window unit '{other}' (ms/seconds/minutes/hours)"
                )))
            }
        };
        let within_ns = (amount as u64).checked_mul(per_ns).ok_or_else(|| {
            TmanError::Parse("window duration overflows a u64 nanosecond count".into())
        })?;
        Ok(WindowSpec {
            count: count as u64,
            within_ns,
        })
    }

    fn event_spec(&mut self) -> Result<EventSpec> {
        if self.eat_kw("insert") {
            self.expect_kw("to")?;
            return Ok(EventSpec {
                kind: EventSpecKind::Insert,
                target: self.ident()?,
            });
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            return Ok(EventSpec {
                kind: EventSpecKind::Delete,
                target: self.ident()?,
            });
        }
        if self.eat_kw("update") {
            if self.eat(&Token::LParen) {
                // on update(emp.salary, emp.dept)
                let mut target = None;
                let mut cols = Vec::new();
                loop {
                    let q = self.ident()?;
                    self.expect(&Token::Dot)?;
                    let col = self.ident()?;
                    match &target {
                        None => target = Some(q),
                        Some(t) if t.eq_ignore_ascii_case(&q) => {}
                        Some(t) => {
                            return Err(TmanError::Parse(format!(
                                "update column list mixes sources '{t}' and '{q}'"
                            )))
                        }
                    }
                    cols.push(col);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                return Ok(EventSpec {
                    kind: EventSpecKind::Update(cols),
                    target: target.expect("at least one column"),
                });
            }
            self.expect_kw("to")?;
            return Ok(EventSpec {
                kind: EventSpecKind::Update(Vec::new()),
                target: self.ident()?,
            });
        }
        Err(self.err("expected insert/delete/update event"))
    }

    fn action(&mut self) -> Result<Action> {
        if self.eat_kw("execsql") {
            return Ok(Action::ExecSql(self.string()?));
        }
        if self.eat_kw("raise") {
            self.expect_kw("event")?;
            let name = self.ident()?;
            let mut args = Vec::new();
            if self.eat(&Token::LParen) && !self.eat(&Token::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            return Ok(Action::RaiseEvent { name, args });
        }
        if self.eat_kw("notify") {
            return Ok(Action::Notify(self.string()?));
        }
        Err(self.err("expected execSQL / raise event / notify action"))
    }

    fn column_defs(&mut self) -> Result<Vec<ColumnDef>> {
        let mut cols = Vec::new();
        loop {
            let name = self.ident()?;
            let ty = self.data_type()?;
            cols.push(ColumnDef { name, ty });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(cols)
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "integer" | "int" | "bigint" => Ok(DataType::Int),
            "float" | "double" | "real" => Ok(DataType::Float),
            "char" | "varchar" => {
                let n = if self.eat(&Token::LParen) {
                    let n = match self.next()? {
                        Token::Int(i) if (1..=u16::MAX as i64).contains(&i) => i as u16,
                        t => return Err(TmanError::Parse(format!("bad length '{t}' for {lower}"))),
                    };
                    self.expect(&Token::RParen)?;
                    n
                } else if lower == "char" {
                    1
                } else {
                    255
                };
                Ok(if lower == "char" {
                    DataType::Char(n)
                } else {
                    DataType::Varchar(n)
                })
            }
            _ => Err(TmanError::Parse(format!("unknown type '{name}'"))),
        }
    }

    // ----- SQL subset -----------------------------------------------------

    fn sql_stmt(&mut self) -> Result<SqlStmt> {
        if self.eat_kw("create") {
            if self.eat_kw("table") {
                let name = self.ident()?;
                self.expect(&Token::LParen)?;
                let columns = self.column_defs()?;
                self.expect(&Token::RParen)?;
                return Ok(SqlStmt::CreateTable { name, columns });
            }
            if self.eat_kw("index") {
                let name = self.ident()?;
                self.expect_kw("on")?;
                let table = self.ident()?;
                self.expect(&Token::LParen)?;
                let mut columns = vec![self.ident()?];
                while self.eat(&Token::Comma) {
                    columns.push(self.ident()?);
                }
                self.expect(&Token::RParen)?;
                return Ok(SqlStmt::CreateIndex {
                    name,
                    table,
                    columns,
                });
            }
            return Err(self.err("expected TABLE or INDEX after CREATE"));
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            return Ok(SqlStmt::DropTable(self.ident()?));
        }
        if self.eat_kw("insert") {
            self.expect_kw("into")?;
            let table = self.ident()?;
            self.expect_kw("values")?;
            self.expect(&Token::LParen)?;
            let mut values = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                values.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(SqlStmt::Insert { table, values });
        }
        if self.eat_kw("update") {
            let table = self.ident()?;
            self.expect_kw("set")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect(&Token::Eq)?;
                sets.push((col, self.expr()?));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            let filter = self.opt_where()?;
            return Ok(SqlStmt::Update {
                table,
                sets,
                filter,
            });
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let filter = self.opt_where()?;
            return Ok(SqlStmt::Delete { table, filter });
        }
        if self.eat_kw("select") {
            let cols = if self.eat(&Token::Star) {
                SelectCols::Star
            } else {
                let mut es = vec![self.expr()?];
                while self.eat(&Token::Comma) {
                    es.push(self.expr()?);
                }
                SelectCols::Exprs(es)
            };
            self.expect_kw("from")?;
            let table = self.ident()?;
            let filter = self.opt_where()?;
            return Ok(SqlStmt::Select {
                cols,
                table,
                filter,
            });
        }
        Err(self.err("expected a SQL statement"))
    }

    fn opt_where(&mut self) -> Result<Option<Expr>> {
        if self.eat_kw("where") {
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    // ----- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            e = Expr::bin(BinaryOp::Or, e, self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and") {
            e = Expr::bin(BinaryOp::And, e, self.not_expr()?);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(self.not_expr()?),
            });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::Ne) => Some(BinaryOp::Ne),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::Le) => Some(BinaryOp::Le),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::Ge) => Some(BinaryOp::Ge),
            Some(t) if t.is_kw("like") => Some(BinaryOp::Like),
            Some(t) if t.is_kw("between") => None, // handled below
            Some(t) if t.is_kw("is") => None,      // handled below
            _ => return Ok(left),
        };
        if let Some(op) = op {
            self.pos += 1;
            return Ok(Expr::bin(op, left, self.add_expr()?));
        }
        if self.eat_kw("between") {
            // a BETWEEN lo AND hi  ⇒  a >= lo AND a <= hi
            let lo = self.add_expr()?;
            self.expect_kw("and")?;
            let hi = self.add_expr()?;
            return Ok(Expr::bin(
                BinaryOp::And,
                Expr::bin(BinaryOp::Ge, left.clone(), lo),
                Expr::bin(BinaryOp::Le, left, hi),
            ));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            let test = Expr::Call {
                name: "is_null".into(),
                args: vec![left],
            };
            return Ok(if negated {
                Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(test),
                }
            } else {
                test
            });
        }
        unreachable!("all comparison branches return");
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => return Ok(e),
            };
            self.pos += 1;
            e = Expr::bin(op, e, self.mul_expr()?);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => return Ok(e),
            };
            self.pos += 1;
            e = Expr::bin(op, e, self.unary_expr()?);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(self.unary_expr()?),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Colon) => {
                self.pos += 1;
                let which = self.ident()?;
                let new = if which.eq_ignore_ascii_case("new") {
                    true
                } else if which.eq_ignore_ascii_case("old") {
                    false
                } else {
                    return Err(TmanError::Parse(format!(
                        "expected NEW or OLD after ':', found '{which}'"
                    )));
                };
                self.expect(&Token::Dot)?;
                let source = self.ident()?;
                self.expect(&Token::Dot)?;
                let column = self.ident()?;
                Ok(Expr::Transition {
                    new,
                    source,
                    column,
                })
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                if name.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Literal(Literal::Null));
                }
                if self.eat(&Token::Dot) {
                    let column = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        column,
                    });
                }
                if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen)?;
                    }
                    return Ok(Expr::Call { name, args });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    column: name,
                })
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

fn is_clause_kw(s: &str) -> bool {
    ["from", "on", "when", "group", "having", "do", "in"]
        .iter()
        .any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_update_fred() {
        let cmd = parse_command(
            "create trigger updateFred from emp on update(emp.salary) \
             when emp.name = 'Bob' \
             do execSQL 'update emp set salary=:NEW.emp.salary where emp.name= ''Fred'''",
        )
        .unwrap();
        let Command::CreateTrigger(t) = cmd else {
            panic!("wrong kind")
        };
        assert_eq!(t.name, "updateFred");
        assert_eq!(t.from.len(), 1);
        assert_eq!(t.from[0].source, "emp");
        let on = t.on.unwrap();
        assert_eq!(on.target, "emp");
        assert_eq!(on.kind, EventSpecKind::Update(vec!["salary".into()]));
        let Action::ExecSql(sql) = t.action else {
            panic!("wrong action")
        };
        assert!(sql.contains(":NEW.emp.salary"));
        assert!(sql.contains("'Fred'"));
        // And the embedded SQL parses too, after macro substitution is
        // simulated by the engine; raw it still parses as transition ref.
        let stmt = parse_sql(&sql).unwrap();
        assert!(matches!(stmt, SqlStmt::Update { .. }));
    }

    #[test]
    fn paper_example_iris_house_alert() {
        let cmd = parse_command(
            "create trigger IrisHouseAlert on insert to house \
             from salesperson s, house h, represents r \
             when s.name = 'Iris' and s.spno=r.spno and r.nno=h.nno \
             do raise event NewHouseInIrisNeighborhood(h.hno, h.address)",
        )
        .unwrap();
        let Command::CreateTrigger(t) = cmd else {
            panic!()
        };
        assert_eq!(t.from.len(), 3);
        assert_eq!(t.from[1].var_name(), "h");
        assert_eq!(t.on.as_ref().unwrap().kind, EventSpecKind::Insert);
        assert_eq!(t.on.as_ref().unwrap().target, "house");
        let Action::RaiseEvent { name, args } = &t.action else {
            panic!()
        };
        assert_eq!(name, "NewHouseInIrisNeighborhood");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn trigger_sets_and_in_clause() {
        assert_eq!(
            parse_command("create trigger set alerts").unwrap(),
            Command::CreateTriggerSet("alerts".into())
        );
        let Command::CreateTrigger(t) = parse_command(
            "create trigger t1 in alerts from emp when emp.salary > 10 do notify 'hi'",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(t.set.as_deref(), Some("alerts"));
        assert_eq!(
            parse_command("drop trigger set alerts").unwrap(),
            Command::DropTriggerSet("alerts".into())
        );
        assert_eq!(
            parse_command("drop trigger t1").unwrap(),
            Command::DropTrigger("t1".into())
        );
    }

    #[test]
    fn enable_disable() {
        assert_eq!(
            parse_command("disable trigger t9").unwrap(),
            Command::SetTriggerEnabled {
                name: "t9".into(),
                enabled: false
            }
        );
        assert_eq!(
            parse_command("enable trigger set s1").unwrap(),
            Command::SetTriggerSetEnabled {
                name: "s1".into(),
                enabled: true
            }
        );
    }

    #[test]
    fn define_data_source_variants() {
        let Command::DefineDataSource {
            name,
            columns,
            from_table,
            connection,
        } = parse_command(
            "define data source quotes (symbol varchar(8), price float, volume integer)",
        )
        .unwrap()
        else {
            panic!()
        };
        assert_eq!(name, "quotes");
        assert!(from_table.is_none());
        assert!(connection.is_none());
        let cols = columns.unwrap();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0].ty, DataType::Varchar(8));
        assert_eq!(cols[1].ty, DataType::Float);

        let Command::DefineDataSource {
            from_table,
            columns,
            connection,
            ..
        } = parse_command("define data source emp from table emp_table via feed").unwrap()
        else {
            panic!()
        };
        assert_eq!(from_table.as_deref(), Some("emp_table"));
        assert!(columns.is_none());
        assert_eq!(connection.as_deref(), Some("feed"));
    }

    #[test]
    fn define_connection_parses() {
        let Command::DefineConnection(def) = parse_command(
            "define connection wallst type 'informix' host 'db.example.com' \
             server 'quotes1' user 'feed' password 'secret' default",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(def.name, "wallst");
        assert_eq!(def.dbtype, "informix");
        assert_eq!(def.host.as_deref(), Some("db.example.com"));
        assert_eq!(def.server.as_deref(), Some("quotes1"));
        assert_eq!(def.user.as_deref(), Some("feed"));
        assert_eq!(def.password.as_deref(), Some("secret"));
        assert!(def.is_default);
        // Minimal form.
        let Command::DefineConnection(def) = parse_command("define connection c2").unwrap() else {
            panic!()
        };
        assert_eq!(def.dbtype, "local");
        assert!(!def.is_default);
    }

    #[test]
    fn group_by_having_parse() {
        let Command::CreateTrigger(t) = parse_command(
            "create trigger agg from sales group by sales.region \
             having sales.total > 100 do notify 'big'",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(t.group_by.len(), 1);
        assert!(t.having.is_some());
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expression("a.x = 1 or b.y = 2 and not c.z > 3").unwrap();
        // or( a.x=1, and( b.y=2, not(c.z>3) ) )
        let Expr::Binary {
            op: BinaryOp::Or,
            right,
            ..
        } = e
        else {
            panic!()
        };
        let Expr::Binary {
            op: BinaryOp::And,
            right,
            ..
        } = *right
        else {
            panic!()
        };
        assert!(matches!(
            *right,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));

        let e = parse_expression("1 + 2 * 3").unwrap();
        let Expr::Binary {
            op: BinaryOp::Add,
            right,
            ..
        } = e
        else {
            panic!()
        };
        assert!(matches!(
            *right,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn between_desugars() {
        let e = parse_expression("t.x between 5 and 10").unwrap();
        let Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } = e
        else {
            panic!()
        };
        assert!(matches!(
            *left,
            Expr::Binary {
                op: BinaryOp::Ge,
                ..
            }
        ));
        assert!(matches!(
            *right,
            Expr::Binary {
                op: BinaryOp::Le,
                ..
            }
        ));
    }

    #[test]
    fn is_null_and_like() {
        let e = parse_expression("t.name is not null and t.name like 'Ir%'").unwrap();
        let Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } = e
        else {
            panic!()
        };
        assert!(matches!(
            *left,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
        assert!(matches!(
            *right,
            Expr::Binary {
                op: BinaryOp::Like,
                ..
            }
        ));
    }

    #[test]
    fn sql_statements_parse() {
        assert!(matches!(
            parse_sql("create table emp (name varchar(32), salary float)").unwrap(),
            SqlStmt::CreateTable { .. }
        ));
        assert!(matches!(
            parse_sql("create index emp_sal on emp (salary)").unwrap(),
            SqlStmt::CreateIndex { .. }
        ));
        assert!(matches!(
            parse_sql("insert into emp values ('Bob', 80000.0)").unwrap(),
            SqlStmt::Insert { .. }
        ));
        assert!(matches!(
            parse_sql("select * from emp where salary > 50000;").unwrap(),
            SqlStmt::Select {
                cols: SelectCols::Star,
                ..
            }
        ));
        assert!(matches!(
            parse_sql("delete from emp where name = 'Bob'").unwrap(),
            SqlStmt::Delete { .. }
        ));
        assert!(matches!(
            parse_sql("drop table emp").unwrap(),
            SqlStmt::DropTable(_)
        ));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_command("create widget w").is_err());
        assert!(parse_command("create trigger t from emp").is_err()); // no do
        assert!(parse_expression("1 +").is_err());
        assert!(parse_expression("(1 + 2").is_err());
        assert!(parse_sql("select from").is_err());
        assert!(parse_command("create trigger t from emp do notify 'x' extra").is_err());
    }

    #[test]
    fn update_event_mixed_sources_rejected() {
        assert!(
            parse_command("create trigger t from a, b on update(a.x, b.y) do notify 'x'").is_err()
        );
    }

    #[test]
    fn show_stats_with_and_without_subsystem() {
        assert_eq!(
            parse_command("show stats").unwrap(),
            Command::ShowStats { subsystem: None }
        );
        assert_eq!(
            parse_command("SHOW STATS cache").unwrap(),
            Command::ShowStats {
                subsystem: Some("cache".into())
            }
        );
        assert!(parse_command("show").is_err());
        assert!(parse_command("show stats cache extra").is_err());
    }

    #[test]
    fn trace_commands() {
        assert_eq!(
            parse_command("trace last 5").unwrap(),
            Command::TraceLast { n: 5 }
        );
        assert_eq!(
            parse_command("TRACE TOKEN 17").unwrap(),
            Command::TraceToken { id: 17 }
        );
        assert!(parse_command("trace").is_err());
        assert!(parse_command("trace last").is_err());
        assert!(parse_command("trace last 0").is_err());
        assert!(parse_command("trace token -1").is_err());
        assert!(parse_command("trace token 1 extra").is_err());
    }

    #[test]
    fn windowed_threshold_parses() {
        // Pure window: no predicate, every source event counts.
        let Command::CreateTrigger(t) = parse_command(
            "create trigger burst from q when count >= 3 within 10 seconds \
             do raise event Burst(q.sym)",
        )
        .unwrap() else {
            panic!()
        };
        assert!(t.when.is_none());
        let w = t.window.unwrap();
        assert_eq!(w.count, 3);
        assert_eq!(w.within_ns, 10_000_000_000);

        // Filtered window: predicate first, then the count clause.
        let Command::CreateTrigger(t) = parse_command(
            "create trigger spike from q when q.price > 100 count >= 5 within 2 minutes \
             do notify 'spike'",
        )
        .unwrap() else {
            panic!()
        };
        assert!(t.when.is_some());
        let w = t.window.unwrap();
        assert_eq!(w.count, 5);
        assert_eq!(w.within_ns, 120_000_000_000);

        // Unit coverage.
        for (unit, ns) in [
            ("ms", 1_000_000u64),
            ("s", 1_000_000_000),
            ("sec", 1_000_000_000),
            ("minutes", 60_000_000_000),
            ("hours", 3_600_000_000_000),
        ] {
            let Command::CreateTrigger(t) = parse_command(&format!(
                "create trigger u from q when count >= 1 within 7 {unit} do notify 'x'"
            ))
            .unwrap() else {
                panic!()
            };
            assert_eq!(t.window.unwrap().within_ns, 7 * ns, "unit {unit}");
        }
    }

    #[test]
    fn windowed_threshold_errors() {
        // count < 1, bad duration, unknown unit, wrong operator.
        assert!(
            parse_command("create trigger t from q when count >= 0 within 1 s do notify 'x'")
                .is_err()
        );
        assert!(
            parse_command("create trigger t from q when count >= 2 within 0 s do notify 'x'")
                .is_err()
        );
        assert!(parse_command(
            "create trigger t from q when count >= 2 within 5 fortnights do notify 'x'"
        )
        .is_err());
        // `count = 5` is NOT the window form: it parses as a column
        // comparison on a column named count (and then fails resolution
        // later if absent — but the parse succeeds).
        let Command::CreateTrigger(t) =
            parse_command("create trigger t from q when count = 5 do notify 'x'").unwrap()
        else {
            panic!()
        };
        assert!(t.window.is_none());
        assert!(t.when.is_some());
    }

    #[test]
    fn transition_refs_in_expressions() {
        let e = parse_expression(":OLD.emp.salary + 10").unwrap();
        let Expr::Binary { left, .. } = e else {
            panic!()
        };
        assert_eq!(
            *left,
            Expr::Transition {
                new: false,
                source: "emp".into(),
                column: "salary".into()
            }
        );
    }
}
