//! Property tests: `parse(expr.to_string())` reproduces the tree, for
//! arbitrary generated expressions (exercises precedence, parentheses,
//! string escaping, keyword case handling).

use proptest::prelude::*;
use tman_lang::ast::{BinaryOp, Expr, Literal, UnaryOp};
use tman_lang::parse_expression;

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords (and/or/not/null/like/between/is) via a prefix.
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("c_{s}"))
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Non-negative: the parser produces negative values as
        // `Neg(Literal)`, never as negative literals.
        (0..i64::MAX).prop_map(Literal::Int),
        (0..i32::MAX).prop_map(|i| Literal::Float(i as f64 / 128.0)),
        "[a-zA-Z0-9 ']{0,12}".prop_map(Literal::Str),
        Just(Literal::Null),
    ]
}

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        literal().prop_map(Expr::Literal),
        ident().prop_map(|column| Expr::Column {
            qualifier: None,
            column
        }),
        (ident(), ident()).prop_map(|(q, column)| Expr::Column {
            qualifier: Some(q),
            column
        }),
        (any::<bool>(), ident(), ident()).prop_map(|(new, source, column)| {
            Expr::Transition {
                new,
                source,
                column,
            }
        }),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(l, r, op)| { Expr::bin(op, l, r) }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e)
            }),
            (
                prop_oneof![Just("abs"), Just("length"), Just("lower")],
                inner.clone()
            )
                .prop_map(|(name, a)| Expr::Call {
                    name: name.into(),
                    args: vec![a]
                }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Ne),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
        Just(BinaryOp::Like),
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
    ]
}

/// `null` renders lowercase but parses back to `Literal::Null`; keyword
/// case doesn't matter — normalize nothing, compare trees directly.
fn normalize(e: &Expr) -> Expr {
    e.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_parse_roundtrip(e in arb_expr()) {
        let text = e.to_string();
        let parsed = parse_expression(&text)
            .unwrap_or_else(|err| panic!("failed to reparse `{text}`: {err}"));
        prop_assert_eq!(normalize(&parsed), normalize(&e), "text: {}", text);
    }

    #[test]
    fn parse_never_panics_on_random_input(s in "[ -~]{0,64}") {
        let _ = parse_expression(&s);
        let _ = tman_lang::parse_command(&s);
        let _ = tman_lang::parse_sql(&s);
    }
}
