//! `tman-baseline` — the comparators the paper argues against (§8).
//!
//! * [`NaiveEca`] — "Most active database systems follow the
//!   event-condition-action (ECA) model ... testing the condition of every
//!   applicable trigger whenever an update event occurs. The cost of this
//!   is always at least linear in the number of triggers associated with
//!   the relevant event since no predicate indexing is normally used."
//! * [`QueryBased`] — the RPL/DIPS approach [Delc88a, Sell88]: "an
//!   approach that runs database queries to test rule conditions as
//!   updates occur. This type of approach has limited scalability due to
//!   the potentially large number of queries that could be generated if
//!   there are many rules." Each token is materialized into a one-row
//!   delta table and every trigger's condition is executed as a fresh SQL
//!   query (parse + bind + execute), which is the cost model of those
//!   systems.
//!
//! Both baselines share trigger definitions with the real engine via the
//! same condition language, so experiment E1 compares *selection-predicate
//! matching strategies* and nothing else.

use parking_lot::RwLock;
use std::sync::Arc;
use tman_common::stats::Counter;
use tman_common::{DataSourceId, EventKind, Result, Schema, TriggerId, UpdateDescriptor, Value};
use tman_expr::cnf::{remap_var, to_cnf, Cnf};
use tman_expr::scalar::Env;
use tman_expr::BindCtx;
use tman_lang::parse_expression;
use tman_sql::Database;

/// A trigger definition shared by both baselines.
struct BaselineTrigger {
    id: TriggerId,
    data_src: DataSourceId,
    event: EventKind,
    /// Compiled selection predicate (variable 0 = the token's tuple).
    pred: Cnf,
    /// Original condition text (re-parsed per token by [`QueryBased`]).
    cond_text: Option<String>,
}

/// Linear-scan ECA trigger processing: every applicable trigger's condition
/// is evaluated against every token.
#[derive(Default)]
pub struct NaiveEca {
    triggers: RwLock<Vec<BaselineTrigger>>,
    /// Conditions evaluated (the linear-cost evidence for E1).
    pub conditions_tested: Counter,
}

impl NaiveEca {
    /// Empty processor.
    pub fn new() -> NaiveEca {
        NaiveEca::default()
    }

    /// Register a trigger with condition `cond` (over `var_name` bound to
    /// `schema`).
    pub fn add_trigger(
        &self,
        id: TriggerId,
        data_src: DataSourceId,
        event: EventKind,
        var_name: &str,
        schema: &Schema,
        cond: &str,
    ) -> Result<()> {
        let ctx = BindCtx::new(vec![(var_name.to_string(), schema)]);
        let cnf = to_cnf(&ctx.pred(&parse_expression(cond)?)?)?;
        self.triggers.write().push(BaselineTrigger {
            id,
            data_src,
            event,
            pred: remap_var(&cnf, 0, 0, var_name),
            cond_text: None,
        });
        Ok(())
    }

    /// Number of registered triggers.
    pub fn len(&self) -> usize {
        self.triggers.read().len()
    }

    /// Is the processor empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Match one token: evaluate *every* applicable trigger's condition.
    pub fn match_token(&self, token: &UpdateDescriptor) -> Result<Vec<TriggerId>> {
        let tuple = token.probe_tuple();
        let bind = Some(tuple);
        let env = Env {
            tuples: std::slice::from_ref(&bind),
            consts: &[],
        };
        let mut out = Vec::new();
        for t in self.triggers.read().iter() {
            if t.data_src != token.data_src || !t.event.accepts(token.op) {
                continue;
            }
            self.conditions_tested.bump();
            if t.pred.matches(&env)? {
                out.push(t.id);
            }
        }
        Ok(out)
    }
}

/// Query-per-trigger condition testing (RPL/DIPS style): the token is
/// inserted into a per-source one-row delta table, and each trigger's
/// condition runs as a standalone SQL query.
pub struct QueryBased {
    db: Arc<Database>,
    triggers: RwLock<Vec<BaselineTrigger>>,
    /// Queries issued (the per-trigger query-cost evidence for E1).
    pub queries_run: Counter,
}

impl QueryBased {
    /// Processor over its own scratch database.
    pub fn new(db: Arc<Database>) -> QueryBased {
        QueryBased {
            db,
            triggers: RwLock::new(Vec::new()),
            queries_run: Counter::new(),
        }
    }

    fn delta_table(&self, src: DataSourceId) -> String {
        format!("delta_{}", src.raw())
    }

    /// Register a data source (creates its delta table).
    pub fn register_source(&self, src: DataSourceId, schema: &Schema) -> Result<()> {
        let name = self.delta_table(src);
        if !self.db.has_table(&name) {
            self.db.create_table(&name, schema.clone())?;
        }
        Ok(())
    }

    /// Register a trigger. `cond` must reference the delta table by its
    /// `delta_<srcid>` name or unqualified columns.
    pub fn add_trigger(
        &self,
        id: TriggerId,
        data_src: DataSourceId,
        event: EventKind,
        cond: &str,
    ) -> Result<()> {
        self.triggers.write().push(BaselineTrigger {
            id,
            data_src,
            event,
            pred: Cnf::truth(),
            cond_text: Some(cond.to_string()),
        });
        Ok(())
    }

    /// Number of registered triggers.
    pub fn len(&self) -> usize {
        self.triggers.read().len()
    }

    /// Is the processor empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Match one token by running one query per applicable trigger.
    pub fn match_token(&self, token: &UpdateDescriptor) -> Result<Vec<TriggerId>> {
        let delta = self.delta_table(token.data_src);
        if !self.db.has_table(&delta) {
            return Ok(Vec::new());
        }
        // Replace the delta table's contents with this token's tuple.
        tman_sql::exec::execute_str(&self.db, &format!("delete from {delta}"))?;
        {
            let t = self.db.table(&delta)?;
            t.insert(token.probe_tuple().values().to_vec())?;
        }
        let mut out = Vec::new();
        for trig in self.triggers.read().iter() {
            if trig.data_src != token.data_src || !trig.event.accepts(token.op) {
                continue;
            }
            let cond = trig.cond_text.as_deref().unwrap_or("1 = 1");
            self.queries_run.bump();
            // Parse + plan + execute per trigger — the RPL cost model.
            let sql = format!("select * from {delta} where {cond}");
            let rows = tman_sql::exec::execute_str(&self.db, &sql)?.rows();
            if !rows.is_empty() {
                out.push(trig.id);
            }
        }
        Ok(out)
    }
}

/// Convenience used by experiments: make a `(name, value)` token.
pub fn simple_token(src: DataSourceId, values: Vec<Value>) -> UpdateDescriptor {
    UpdateDescriptor::insert(src, tman_common::Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tman_common::DataType;

    fn emp() -> Schema {
        Schema::from_pairs(&[
            ("name", DataType::Varchar(32)),
            ("salary", DataType::Float),
            ("dept", DataType::Int),
        ])
    }

    const SRC: DataSourceId = DataSourceId(1);

    fn tok(name: &str, sal: f64, dept: i64) -> UpdateDescriptor {
        simple_token(
            SRC,
            vec![Value::str(name), Value::Float(sal), Value::Int(dept)],
        )
    }

    #[test]
    fn naive_eca_matches_and_counts_linear_work() {
        let eca = NaiveEca::new();
        let schema = emp();
        for i in 0..100u64 {
            eca.add_trigger(
                TriggerId(i),
                SRC,
                EventKind::Insert,
                "emp",
                &schema,
                &format!("emp.salary > {}", i * 1000),
            )
            .unwrap();
        }
        let hits = eca.match_token(&tok("x", 5_500.0, 1)).unwrap();
        assert_eq!(hits.len(), 6); // thresholds 0..=5000
                                   // Linear: all 100 conditions evaluated for one token.
        assert_eq!(eca.conditions_tested.get(), 100);
    }

    #[test]
    fn naive_eca_filters_by_source_and_event() {
        let eca = NaiveEca::new();
        let schema = emp();
        eca.add_trigger(
            TriggerId(1),
            SRC,
            EventKind::Delete,
            "emp",
            &schema,
            "emp.dept = 1",
        )
        .unwrap();
        eca.add_trigger(
            TriggerId(2),
            DataSourceId(9),
            EventKind::Insert,
            "emp",
            &schema,
            "emp.dept = 1",
        )
        .unwrap();
        assert!(eca.match_token(&tok("x", 1.0, 1)).unwrap().is_empty());
        assert_eq!(
            eca.conditions_tested.get(),
            0,
            "non-applicable triggers skipped"
        );
    }

    #[test]
    fn query_based_matches_via_queries() {
        let db = Arc::new(Database::open_memory(256));
        let qb = QueryBased::new(db);
        qb.register_source(SRC, &emp()).unwrap();
        for i in 0..20u64 {
            qb.add_trigger(
                TriggerId(i),
                SRC,
                EventKind::Insert,
                &format!("dept = {}", i % 4),
            )
            .unwrap();
        }
        let hits = qb.match_token(&tok("x", 1.0, 2)).unwrap();
        assert_eq!(hits.len(), 5); // ids 2, 6, 10, 14, 18
        assert_eq!(qb.queries_run.get(), 20, "one query per trigger per token");
        // Second token reuses the delta table.
        let hits = qb.match_token(&tok("y", 1.0, 3)).unwrap();
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn baselines_agree_with_each_other() {
        let schema = emp();
        let eca = NaiveEca::new();
        let db = Arc::new(Database::open_memory(256));
        let qb = QueryBased::new(db);
        qb.register_source(SRC, &schema).unwrap();
        for i in 0..30u64 {
            let cond_eca = format!("emp.dept = {} and emp.salary > {}", i % 3, i * 100);
            let cond_qb = format!("dept = {} and salary > {}", i % 3, i * 100);
            eca.add_trigger(
                TriggerId(i),
                SRC,
                EventKind::Insert,
                "emp",
                &schema,
                &cond_eca,
            )
            .unwrap();
            qb.add_trigger(TriggerId(i), SRC, EventKind::Insert, &cond_qb)
                .unwrap();
        }
        for t in [tok("a", 500.0, 0), tok("b", 5000.0, 1), tok("c", 0.0, 2)] {
            let mut a = eca.match_token(&t).unwrap();
            let mut b = qb.match_token(&t).unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }
}
