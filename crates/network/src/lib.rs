//! `tman-network` — discrimination networks for join trigger conditions.
//!
//! The paper uses an **A-TREAT network** \[Hans96\], "a variation of the
//! TREAT network \[Mira87\]", and states its results "are applicable to
//! TREAT, Rete \[Forg82\] and Gator networks". This crate implements all
//! four:
//!
//! * [`NetworkKind::Treat`] — stored alpha memories per tuple variable, no
//!   beta memories; a token joins against all other alpha memories on
//!   arrival.
//! * [`NetworkKind::ATreat`] — TREAT with *virtual alpha nodes*: instead
//!   of materializing the selection result, a virtual alpha stores only the
//!   selection predicate and scans the base data source through
//!   [`AlphaSource`] at join time. The variable the trigger's `on` event
//!   names keeps no memory at all (its tokens drive the network).
//! * [`NetworkKind::Rete`] — classical left-deep binary join network with
//!   beta memories holding partial bindings.
//! * [`NetworkKind::Gator`] — the paper's planned upgrade (\[Hans97b\]):
//!   pair-cluster join memories, the tunable middle ground between TREAT
//!   and Rete.
//!
//! Tokens arrive with a [`Polarity`] (`+` insert / `-` delete; updates are
//! split by the engine into `-old` then `+new` for join triggers). A full
//! match reaching the P-node produces a [`Firing`] with one bound tuple per
//! variable.
//!
//! §5.1's trigger "priming" is [`Network::prime`]: stored memories are
//! populated from the base data when the trigger is created.

use parking_lot::RwLock;
use std::sync::Arc;
use tman_common::{DataSourceId, Result, TmanError, Tuple};
use tman_expr::cnf::ConditionGraph;
use tman_expr::scalar::Env;

/// Token polarity through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Insertion (`+` token).
    Plus,
    /// Deletion (`-` token).
    Minus,
}

/// A complete rule-condition match.
#[derive(Debug, Clone, PartialEq)]
pub struct Firing {
    /// `+` = the combination came into existence; `-` = it ceased to.
    pub polarity: Polarity,
    /// One tuple per tuple variable, in `from`-list order.
    pub bindings: Vec<Tuple>,
}

/// Access to base data-source contents, for virtual alpha nodes (A-TREAT)
/// and for priming stored memories. Implemented by the engine over its
/// tables; tests use in-memory vectors.
pub trait AlphaSource {
    /// Visit the current tuples of `data_src`. The caller applies selection
    /// predicates itself.
    fn scan_source(
        &self,
        data_src: DataSourceId,
        visit: &mut dyn FnMut(&Tuple) -> Result<()>,
    ) -> Result<()>;
}

/// Which discrimination network to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// Stored alpha memories, no betas.
    Treat,
    /// Virtual alpha memories (the paper's network).
    ATreat,
    /// Stored alphas plus left-deep beta memories.
    Rete,
    /// Gator network (\[Hans97b\], the paper's planned upgrade): a
    /// generalization of TREAT and Rete where join memories have arbitrary
    /// fan-in. This implementation clusters the tuple variables into
    /// join-connected pairs, materializes each cluster's join, and lets
    /// tokens join against the (few, pre-joined) cluster memories instead
    /// of every alpha memory.
    Gator,
}

enum Alpha {
    /// Materialized selection result.
    Stored(RwLock<Vec<Tuple>>),
    /// Predicate only; base data scanned on demand (A-TREAT's innovation).
    Virtual,
}

/// A Gator join memory: the materialized join of a group of variables.
struct Cluster {
    /// Member variables, in memory-entry order.
    vars: Vec<usize>,
    /// Joined partial bindings (one tuple per member, parallel to `vars`).
    memory: RwLock<Vec<Vec<Tuple>>>,
}

/// A compiled discrimination network for one trigger.
pub struct Network {
    kind: NetworkKind,
    graph: ConditionGraph,
    var_sources: Vec<DataSourceId>,
    alphas: Vec<Alpha>,
    /// Rete only: beta\[k\] holds bindings of variables 0..=k+1 (beta\[0\]
    /// joins vars 0 and 1, the last beta is the P-node's memory).
    betas: Vec<RwLock<Vec<Vec<Tuple>>>>,
    /// Gator only: pair-cluster join memories.
    clusters: Vec<Cluster>,
    /// Variable driven by the trigger's `on` event (never materialized for
    /// A-TREAT).
    event_var: usize,
}

impl Network {
    /// Compile a network from a trigger's condition graph.
    ///
    /// `var_sources[v]` is the data source bound to variable `v`;
    /// `event_var` is the variable named in the `on` clause (or the single
    /// variable for selection-only triggers).
    pub fn build(
        kind: NetworkKind,
        graph: ConditionGraph,
        var_sources: Vec<DataSourceId>,
        event_var: usize,
    ) -> Result<Network> {
        if graph.num_vars != var_sources.len() {
            return Err(TmanError::Internal(format!(
                "graph has {} vars, {} sources supplied",
                graph.num_vars,
                var_sources.len()
            )));
        }
        if graph.num_vars == 0 {
            return Err(TmanError::Invalid(
                "trigger needs at least one tuple variable".into(),
            ));
        }
        let alphas = (0..graph.num_vars)
            .map(|_| match kind {
                NetworkKind::ATreat => Alpha::Virtual,
                // TREAT, Rete and Gator all keep stored selection results.
                _ => Alpha::Stored(RwLock::new(Vec::new())),
            })
            .collect();
        let betas = if kind == NetworkKind::Rete && graph.num_vars >= 2 {
            (0..graph.num_vars - 1)
                .map(|_| RwLock::new(Vec::new()))
                .collect()
        } else {
            Vec::new()
        };
        let clusters = if kind == NetworkKind::Gator && graph.num_vars >= 2 {
            Self::plan_clusters(&graph)
        } else {
            Vec::new()
        };
        Ok(Network {
            kind,
            graph,
            var_sources,
            alphas,
            betas,
            clusters,
            event_var,
        })
    }

    /// Greedy pair clustering: repeatedly take an unclustered variable and
    /// pair it with a join-connected unclustered partner (any partner if
    /// none is connected); a leftover variable forms a singleton cluster.
    /// Real Gator optimizers pick shapes by cost (\[Hans97b\]); pairing is
    /// the simplest non-trivial shape between TREAT (all singletons) and
    /// Rete (one left-deep chain).
    fn plan_clusters(graph: &ConditionGraph) -> Vec<Cluster> {
        let n = graph.num_vars;
        let mut used = vec![false; n];
        let mut clusters = Vec::new();
        for v in 0..n {
            if used[v] {
                continue;
            }
            used[v] = true;
            let partner = (0..n)
                .filter(|&u| !used[u])
                .find(|&u| {
                    graph
                        .joins
                        .iter()
                        .any(|e| (e.a == v && e.b == u) || (e.a == u && e.b == v))
                })
                .or_else(|| (0..n).find(|&u| !used[u]));
            let mut vars = vec![v];
            if let Some(u) = partner {
                used[u] = true;
                vars.push(u);
            }
            clusters.push(Cluster {
                vars,
                memory: RwLock::new(Vec::new()),
            });
        }
        clusters
    }

    /// The network kind.
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    /// Number of tuple variables.
    pub fn num_vars(&self) -> usize {
        self.graph.num_vars
    }

    /// The event-driving variable.
    pub fn event_var(&self) -> usize {
        self.event_var
    }

    /// Total tuples held in stored memories (alpha + beta + Gator cluster)
    /// — the memory metric of experiment E8.
    pub fn memory_tuples(&self) -> usize {
        let a: usize = self
            .alphas
            .iter()
            .map(|al| match al {
                Alpha::Stored(m) => m.read().len(),
                Alpha::Virtual => 0,
            })
            .sum();
        let b: usize = self
            .betas
            .iter()
            .map(|m| m.read().iter().map(Vec::len).sum::<usize>())
            .sum();
        let g: usize = self
            .clusters
            .iter()
            .map(|c| c.memory.read().iter().map(Vec::len).sum::<usize>())
            .sum();
        a + b + g
    }

    /// Does `tuple` satisfy variable `v`'s selection predicate?
    pub fn selection_matches(&self, v: usize, tuple: &Tuple) -> Result<bool> {
        let sel = &self.graph.selections[v];
        if sel.is_truth() {
            return Ok(true);
        }
        let mut binds: Vec<Option<&Tuple>> = vec![None; self.graph.num_vars];
        binds[v] = Some(tuple);
        sel.matches(&Env {
            tuples: &binds,
            consts: &[],
        })
    }

    /// §5.1 priming: populate stored memories (and Rete betas / Gator
    /// clusters) from base data so the network reflects pre-existing rows.
    pub fn prime(&self, source: &dyn AlphaSource) -> Result<()> {
        for v in 0..self.graph.num_vars {
            self.prime_var(v, source)?;
        }
        self.rebuild_derived()
    }

    /// §6 *data-level concurrency*: "a set of data values in an alpha or
    /// beta memory node ... can be processed by a query that can run in
    /// parallel." Priming is exactly such a query (one selection scan per
    /// memory node), so scan each node's base data on its own thread.
    pub fn prime_parallel(&self, source: &(dyn AlphaSource + Sync)) -> Result<()> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.graph.num_vars)
                .map(|v| scope.spawn(move || self.prime_var(v, source)))
                .collect();
            for h in handles {
                h.join()
                    .map_err(|_| TmanError::Internal("priming thread panicked".into()))??;
            }
            Ok::<(), TmanError>(())
        })?;
        self.rebuild_derived()
    }

    fn prime_var(&self, v: usize, source: &dyn AlphaSource) -> Result<()> {
        if let Alpha::Stored(mem) = &self.alphas[v] {
            let mut rows = Vec::new();
            source.scan_source(self.var_sources[v], &mut |t| {
                if self.selection_matches(v, t)? {
                    rows.push(t.clone());
                }
                Ok(())
            })?;
            *mem.write() = rows;
        }
        Ok(())
    }

    fn rebuild_derived(&self) -> Result<()> {
        if self.kind == NetworkKind::Rete {
            self.rebuild_betas()?;
        }
        if self.kind == NetworkKind::Gator {
            self.rebuild_clusters()?;
        }
        Ok(())
    }

    /// Recompute every Gator cluster memory from the alpha memories.
    fn rebuild_clusters(&self) -> Result<()> {
        for cluster in &self.clusters {
            let rows: Vec<Vec<Tuple>> = cluster
                .vars
                .iter()
                .map(|&v| match &self.alphas[v] {
                    Alpha::Stored(m) => m.read().clone(),
                    Alpha::Virtual => Vec::new(),
                })
                .collect();
            let mem = self.cross_join_filtered(cluster, rows)?;
            *cluster.memory.write() = mem;
        }
        Ok(())
    }

    /// Cross-join per-member candidate rows, keeping entries whose
    /// intra-cluster join edges hold.
    fn cross_join_filtered(
        &self,
        cluster: &Cluster,
        rows: Vec<Vec<Tuple>>,
    ) -> Result<Vec<Vec<Tuple>>> {
        let mut acc: Vec<Vec<Tuple>> = vec![Vec::new()];
        for r in &rows {
            let mut next = Vec::with_capacity(acc.len() * r.len());
            for partial in &acc {
                for t in r {
                    let mut e = partial.clone();
                    e.push(t.clone());
                    next.push(e);
                }
            }
            acc = next;
            if acc.is_empty() {
                return Ok(acc);
            }
        }
        let mut out = Vec::with_capacity(acc.len());
        for entry in acc {
            if self.cluster_entry_joins_ok(cluster, &entry)? {
                out.push(entry);
            }
        }
        Ok(out)
    }

    /// Do the intra-cluster join edges hold for a candidate entry?
    fn cluster_entry_joins_ok(&self, cluster: &Cluster, entry: &[Tuple]) -> Result<bool> {
        let mut binds: Vec<Option<&Tuple>> = vec![None; self.graph.num_vars];
        for (pos, &v) in cluster.vars.iter().enumerate() {
            binds[v] = Some(&entry[pos]);
        }
        let env = Env {
            tuples: &binds,
            consts: &[],
        };
        for e in &self.graph.joins {
            let a_in = cluster.vars.contains(&e.a);
            let b_in = cluster.vars.contains(&e.b);
            if a_in && b_in && !e.pred.matches(&env)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn activate_gator(
        &self,
        var: usize,
        polarity: Polarity,
        tuple: &Tuple,
        fire: &mut dyn FnMut(Firing),
    ) -> Result<()> {
        let ci = self
            .clusters
            .iter()
            .position(|c| c.vars.contains(&var))
            .ok_or_else(|| TmanError::Internal(format!("variable {var} in no cluster")))?;
        let cluster = &self.clusters[ci];
        let pos = cluster.vars.iter().position(|&v| v == var).expect("member");
        match polarity {
            Polarity::Plus => {
                self.update_alpha(var, Polarity::Plus, tuple);
                // Delta = new cluster entries where `var` binds the token
                // and siblings come from their alpha memories.
                let rows: Vec<Vec<Tuple>> = cluster
                    .vars
                    .iter()
                    .enumerate()
                    .map(|(p, &v)| {
                        if p == pos {
                            vec![tuple.clone()]
                        } else {
                            match &self.alphas[v] {
                                Alpha::Stored(m) => m.read().clone(),
                                Alpha::Virtual => Vec::new(),
                            }
                        }
                    })
                    .collect();
                let delta = self.cross_join_filtered(cluster, rows)?;
                cluster.memory.write().extend(delta.iter().cloned());
                self.fire_cluster_delta(ci, &delta, polarity, fire)
            }
            Polarity::Minus => {
                let mut removed = Vec::new();
                {
                    let mut mem = cluster.memory.write();
                    mem.retain(|entry| {
                        if &entry[pos] == tuple {
                            removed.push(entry.clone());
                            false
                        } else {
                            true
                        }
                    });
                }
                self.update_alpha(var, Polarity::Minus, tuple);
                self.fire_cluster_delta(ci, &removed, polarity, fire)
            }
        }
    }

    /// Join delta entries of cluster `ci` against every other cluster's
    /// memory, checking cross-cluster edges and the catch-all conjuncts.
    fn fire_cluster_delta(
        &self,
        ci: usize,
        delta: &[Vec<Tuple>],
        polarity: Polarity,
        fire: &mut dyn FnMut(Firing),
    ) -> Result<()> {
        let others: Vec<usize> = (0..self.clusters.len()).filter(|&i| i != ci).collect();
        for d in delta {
            let mut binds: Vec<Option<Tuple>> = vec![None; self.graph.num_vars];
            for (pos, &v) in self.clusters[ci].vars.iter().enumerate() {
                binds[v] = Some(d[pos].clone());
            }
            let bound_mask = self.clusters[ci]
                .vars
                .iter()
                .fold(0u64, |m, &v| m | (1 << v));
            self.extend_clusters(&others, 0, &mut binds, bound_mask, polarity, fire)?;
        }
        Ok(())
    }

    fn extend_clusters(
        &self,
        others: &[usize],
        depth: usize,
        binds: &mut Vec<Option<Tuple>>,
        bound_mask: u64,
        polarity: Polarity,
        fire: &mut dyn FnMut(Firing),
    ) -> Result<()> {
        if depth == others.len() {
            let refs: Vec<Option<&Tuple>> = binds.iter().map(|b| b.as_ref()).collect();
            if self.catch_all_ok(&refs)? {
                fire(Firing {
                    polarity,
                    bindings: binds.iter().map(|b| b.clone().unwrap()).collect(),
                });
            }
            return Ok(());
        }
        let cluster = &self.clusters[others[depth]];
        let entries = cluster.memory.read().clone();
        let cluster_mask = cluster.vars.iter().fold(0u64, |m, &v| m | (1 << v));
        'entries: for entry in entries {
            for (pos, &v) in cluster.vars.iter().enumerate() {
                binds[v] = Some(entry[pos].clone());
            }
            // Check every edge between this cluster's vars and the
            // already-bound set.
            let refs: Vec<Option<&Tuple>> = binds.iter().map(|b| b.as_ref()).collect();
            for &v in &cluster.vars {
                if !self.edges_ok(&refs, v, bound_mask)? {
                    continue 'entries;
                }
            }
            self.extend_clusters(
                others,
                depth + 1,
                binds,
                bound_mask | cluster_mask,
                polarity,
                fire,
            )?;
        }
        for &v in &cluster.vars {
            binds[v] = None;
        }
        Ok(())
    }

    fn rebuild_betas(&self) -> Result<()> {
        if self.betas.is_empty() {
            return Ok(());
        }
        let alpha = |v: usize| -> Vec<Tuple> {
            match &self.alphas[v] {
                Alpha::Stored(m) => m.read().clone(),
                Alpha::Virtual => Vec::new(),
            }
        };
        let mut partials: Vec<Vec<Tuple>> = alpha(0).into_iter().map(|t| vec![t]).collect();
        for v in 1..self.graph.num_vars {
            let mut next = Vec::new();
            for p in &partials {
                for t in alpha(v) {
                    let mut cand = p.clone();
                    cand.push(t);
                    if self.joins_ok_prefix(&cand)? {
                        next.push(cand);
                    }
                }
            }
            *self.betas[v - 1].write() = next.clone();
            partials = next;
        }
        Ok(())
    }

    /// Evaluate all join edges fully contained in the bound prefix
    /// `cand[0..k]` that involve variable `k-1` (the newly added one).
    fn joins_ok_prefix(&self, cand: &[Tuple]) -> Result<bool> {
        let new_var = cand.len() - 1;
        let mut binds: Vec<Option<&Tuple>> = vec![None; self.graph.num_vars];
        for (v, t) in cand.iter().enumerate() {
            binds[v] = Some(t);
        }
        let env = Env {
            tuples: &binds,
            consts: &[],
        };
        for e in &self.graph.joins {
            let touches_new =
                (e.a == new_var && e.b < cand.len()) || (e.b == new_var && e.a < cand.len());
            if touches_new && !e.pred.matches(&env)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Evaluate join edges between `var` and any bound member of `bound_mask`,
    /// given partial bindings.
    fn edges_ok(&self, binds: &[Option<&Tuple>], var: usize, bound_mask: u64) -> Result<bool> {
        let env = Env {
            tuples: binds,
            consts: &[],
        };
        for e in &self.graph.joins {
            let other = if e.a == var {
                e.b
            } else if e.b == var {
                e.a
            } else {
                continue;
            };
            if bound_mask & (1 << other) != 0 && !e.pred.matches(&env)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Evaluate the catch-all conjuncts (trivial and hyper-join) on a full
    /// binding — §5.1's "special cases".
    fn catch_all_ok(&self, binds: &[Option<&Tuple>]) -> Result<bool> {
        if self.graph.catch_all.is_empty() {
            return Ok(true);
        }
        let env = Env {
            tuples: binds,
            consts: &[],
        };
        for c in &self.graph.catch_all {
            if c.eval(&env)? != Some(true) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Feed a token for variable `var` through the network. The token must
    /// already satisfy `var`'s selection predicate (the predicate index
    /// guarantees this in the engine; [`Network::selection_matches`] is
    /// available for direct users).
    ///
    /// Full matches are delivered to `fire`.
    pub fn activate(
        &self,
        var: usize,
        polarity: Polarity,
        tuple: &Tuple,
        source: &dyn AlphaSource,
        fire: &mut dyn FnMut(Firing),
    ) -> Result<()> {
        if var >= self.graph.num_vars {
            return Err(TmanError::Internal(format!("no variable {var}")));
        }
        // Single-variable triggers: straight to the P-node.
        if self.graph.num_vars == 1 {
            let binds = [Some(tuple)];
            if self.catch_all_ok(&binds)? {
                fire(Firing {
                    polarity,
                    bindings: vec![tuple.clone()],
                });
            }
            return Ok(());
        }
        match self.kind {
            NetworkKind::Treat | NetworkKind::ATreat => {
                self.activate_treat(var, polarity, tuple, source, fire)
            }
            NetworkKind::Rete => self.activate_rete(var, polarity, tuple, fire),
            NetworkKind::Gator => self.activate_gator(var, polarity, tuple, fire),
        }
    }

    fn update_alpha(&self, var: usize, polarity: Polarity, tuple: &Tuple) {
        if let Alpha::Stored(mem) = &self.alphas[var] {
            match polarity {
                Polarity::Plus => mem.write().push(tuple.clone()),
                Polarity::Minus => {
                    let mut m = mem.write();
                    if let Some(pos) = m.iter().position(|t| t == tuple) {
                        m.remove(pos);
                    }
                }
            }
        }
    }

    fn activate_treat(
        &self,
        var: usize,
        polarity: Polarity,
        tuple: &Tuple,
        source: &dyn AlphaSource,
        fire: &mut dyn FnMut(Firing),
    ) -> Result<()> {
        // For minus tokens, compute the joins *after* removal would be
        // wrong (the tuple's combinations still need reporting), and
        // computing before insertion is wrong for plus (self-join misses)
        // — the standard TREAT discipline: minus joins first, then update;
        // plus updates first? No: plus must not see itself twice. Join
        // computation below binds `var` to the token explicitly and other
        // variables from memories, so update order only matters for
        // self-joins over the *same* variable, which cannot happen (one
        // variable binds one tuple). Update order: apply to memory first
        // for Plus (so concurrent readers see it), after for Minus.
        if polarity == Polarity::Plus {
            self.update_alpha(var, polarity, tuple);
        }

        // Join enumeration: depth-first over the remaining variables,
        // connected-first ordering.
        let order = self.join_order(var);
        let mut binds: Vec<Option<Tuple>> = vec![None; self.graph.num_vars];
        binds[var] = Some(tuple.clone());
        self.extend_binding(&order, 0, 1 << var, &mut binds, source, &mut |full| {
            fire(Firing {
                polarity,
                bindings: full.to_vec(),
            })
        })?;

        if polarity == Polarity::Minus {
            self.update_alpha(var, polarity, tuple);
        }
        Ok(())
    }

    /// Order the remaining variables: repeatedly pick one joined to the
    /// already-bound set (avoiding cross products when possible).
    fn join_order(&self, start: usize) -> Vec<usize> {
        let n = self.graph.num_vars;
        let mut order = Vec::with_capacity(n - 1);
        let mut bound = 1u64 << start;
        while order.len() < n - 1 {
            let next = (0..n)
                .filter(|v| bound & (1 << v) == 0)
                .find(|&v| {
                    self.graph.joins.iter().any(|e| {
                        (e.a == v && bound & (1 << e.b) != 0)
                            || (e.b == v && bound & (1 << e.a) != 0)
                    })
                })
                .or_else(|| (0..n).find(|v| bound & (1 << v) == 0))
                .expect("some variable remains");
            bound |= 1 << next;
            order.push(next);
        }
        order
    }

    fn extend_binding(
        &self,
        order: &[usize],
        depth: usize,
        bound_mask: u64,
        binds: &mut Vec<Option<Tuple>>,
        source: &dyn AlphaSource,
        emit: &mut dyn FnMut(&[Tuple]),
    ) -> Result<()> {
        if depth == order.len() {
            let refs: Vec<Option<&Tuple>> = binds.iter().map(|b| b.as_ref()).collect();
            if self.catch_all_ok(&refs)? {
                let full: Vec<Tuple> = binds.iter().map(|b| b.clone().unwrap()).collect();
                emit(&full);
            }
            return Ok(());
        }
        let var = order[depth];
        let candidates: Vec<Tuple> = match &self.alphas[var] {
            Alpha::Stored(mem) => mem.read().clone(),
            Alpha::Virtual => {
                let mut rows = Vec::new();
                source.scan_source(self.var_sources[var], &mut |t| {
                    if self.selection_matches(var, t)? {
                        rows.push(t.clone());
                    }
                    Ok(())
                })?;
                rows
            }
        };
        for cand in candidates {
            binds[var] = Some(cand);
            let refs: Vec<Option<&Tuple>> = binds.iter().map(|b| b.as_ref()).collect();
            if self.edges_ok(&refs, var, bound_mask)? {
                self.extend_binding(
                    order,
                    depth + 1,
                    bound_mask | (1 << var),
                    binds,
                    source,
                    emit,
                )?;
            }
        }
        binds[var] = None;
        Ok(())
    }

    fn activate_rete(
        &self,
        var: usize,
        polarity: Polarity,
        tuple: &Tuple,
        fire: &mut dyn FnMut(Firing),
    ) -> Result<()> {
        match polarity {
            Polarity::Plus => {
                self.update_alpha(var, Polarity::Plus, tuple);
                // New partial bindings where position `var` is the token.
                let lefts: Vec<Vec<Tuple>> = if var == 0 {
                    vec![vec![tuple.clone()]]
                } else {
                    // Extend beta[var-2] (bindings of 0..var) with the token;
                    // for var == 1, extend alpha 0.
                    let prefixes: Vec<Vec<Tuple>> = if var == 1 {
                        match &self.alphas[0] {
                            Alpha::Stored(m) => m.read().iter().map(|t| vec![t.clone()]).collect(),
                            Alpha::Virtual => Vec::new(),
                        }
                    } else {
                        self.betas[var - 2].read().clone()
                    };
                    let mut out = Vec::new();
                    for p in prefixes {
                        let mut cand = p;
                        cand.push(tuple.clone());
                        if self.joins_ok_prefix(&cand)? {
                            out.push(cand);
                        }
                    }
                    out
                };
                // Cascade down through the remaining variables, storing
                // into each beta memory.
                let mut frontier = lefts;
                if var >= 1 {
                    self.betas[var - 1].write().extend(frontier.iter().cloned());
                }
                for next_var in var + 1..self.graph.num_vars {
                    let alpha_rows: Vec<Tuple> = match &self.alphas[next_var] {
                        Alpha::Stored(m) => m.read().clone(),
                        Alpha::Virtual => Vec::new(),
                    };
                    let mut next = Vec::new();
                    for p in &frontier {
                        for t in &alpha_rows {
                            let mut cand = p.clone();
                            cand.push(t.clone());
                            if self.joins_ok_prefix(&cand)? {
                                next.push(cand);
                            }
                        }
                    }
                    self.betas[next_var - 1]
                        .write()
                        .extend(next.iter().cloned());
                    frontier = next;
                }
                for full in frontier {
                    let refs: Vec<Option<&Tuple>> = full.iter().map(Some).collect();
                    if self.catch_all_ok(&refs)? {
                        fire(Firing {
                            polarity,
                            bindings: full,
                        });
                    }
                }
            }
            Polarity::Minus => {
                // Remove from alpha, then purge partial bindings containing
                // the tuple at position `var`, reporting full ones.
                self.update_alpha(var, Polarity::Minus, tuple);
                let last = self.betas.len();
                for (bi, beta) in self.betas.iter().enumerate() {
                    let mut mem = beta.write();
                    let mut removed = Vec::new();
                    mem.retain(|p| {
                        if p.len() > var && &p[var] == tuple {
                            removed.push(p.clone());
                            false
                        } else {
                            true
                        }
                    });
                    if bi + 1 == last {
                        for full in removed {
                            let refs: Vec<Option<&Tuple>> = full.iter().map(Some).collect();
                            if self.catch_all_ok(&refs)? {
                                fire(Firing {
                                    polarity,
                                    bindings: full,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// A trivial [`AlphaSource`] over in-memory relations (tests and the
/// baseline implementations).
#[derive(Default)]
pub struct MemSource {
    relations: RwLock<tman_common::fxhash::FxHashMap<DataSourceId, Vec<Tuple>>>,
}

impl MemSource {
    /// Empty source set.
    pub fn new() -> MemSource {
        MemSource::default()
    }

    /// Replace the contents of a source.
    pub fn set(&self, src: DataSourceId, rows: Vec<Tuple>) {
        self.relations.write().insert(src, rows);
    }

    /// Append one row.
    pub fn push(&self, src: DataSourceId, row: Tuple) {
        self.relations.write().entry(src).or_default().push(row);
    }

    /// Remove one row equal to `row`.
    pub fn remove(&self, src: DataSourceId, row: &Tuple) {
        if let Some(rows) = self.relations.write().get_mut(&src) {
            if let Some(pos) = rows.iter().position(|t| t == row) {
                rows.remove(pos);
            }
        }
    }
}

impl AlphaSource for MemSource {
    fn scan_source(
        &self,
        data_src: DataSourceId,
        visit: &mut dyn FnMut(&Tuple) -> Result<()>,
    ) -> Result<()> {
        if let Some(rows) = self.relations.read().get(&data_src) {
            for t in rows {
                visit(t)?;
            }
        }
        Ok(())
    }
}

/// Shared handle used by the engine.
pub type NetworkRef = Arc<Network>;

/// Re-export for engine convenience.
pub use tman_expr::cnf::ConditionGraph as Graph;

#[cfg(test)]
mod tests;
