use super::*;
use tman_common::{DataType, Schema, Value};
use tman_expr::cnf::to_cnf;
use tman_expr::BindCtx;
use tman_lang::parse_expression;

// The paper's real-estate schema (§2).
const SP: DataSourceId = DataSourceId(1); // salesperson(spno, name)
const HOUSE: DataSourceId = DataSourceId(2); // house(hno, price, nno)
const REP: DataSourceId = DataSourceId(3); // represents(spno, nno)

fn schemas() -> (Schema, Schema, Schema) {
    (
        Schema::from_pairs(&[("spno", DataType::Int), ("name", DataType::Varchar(20))]),
        Schema::from_pairs(&[
            ("hno", DataType::Int),
            ("price", DataType::Float),
            ("nno", DataType::Int),
        ]),
        Schema::from_pairs(&[("spno", DataType::Int), ("nno", DataType::Int)]),
    )
}

/// Build the IrisHouseAlert condition graph:
/// `s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno`
/// with vars [s, h, r] and event on h (insert to house).
fn iris_graph(extra: &str) -> ConditionGraph {
    let (s, h, r) = schemas();
    let ctx = BindCtx::new(vec![("s".into(), &s), ("h".into(), &h), ("r".into(), &r)]);
    let cond = if extra.is_empty() {
        "s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno".to_string()
    } else {
        format!("s.name = 'Iris' and s.spno = r.spno and r.nno = h.nno and {extra}")
    };
    let cnf = to_cnf(&ctx.pred(&parse_expression(&cond).unwrap()).unwrap()).unwrap();
    ConditionGraph::build(cnf, 3)
}

fn sp_row(spno: i64, name: &str) -> Tuple {
    Tuple::new(vec![Value::Int(spno), Value::str(name)])
}

fn house_row(hno: i64, price: f64, nno: i64) -> Tuple {
    Tuple::new(vec![Value::Int(hno), Value::Float(price), Value::Int(nno)])
}

fn rep_row(spno: i64, nno: i64) -> Tuple {
    Tuple::new(vec![Value::Int(spno), Value::Int(nno)])
}

fn base_data() -> MemSource {
    let src = MemSource::new();
    src.set(SP, vec![sp_row(1, "Iris"), sp_row(2, "Bob")]);
    src.set(REP, vec![rep_row(1, 10), rep_row(1, 11), rep_row(2, 12)]);
    src.set(HOUSE, vec![house_row(100, 50_000.0, 10)]);
    src
}

fn build(kind: NetworkKind, extra: &str) -> Network {
    Network::build(kind, iris_graph(extra), vec![SP, HOUSE, REP], 1).unwrap()
}

fn fire_all(n: &Network, src: &MemSource, var: usize, pol: Polarity, t: &Tuple) -> Vec<Firing> {
    let mut out = Vec::new();
    n.activate(var, pol, t, src, &mut |f| out.push(f)).unwrap();
    out
}

#[test]
fn all_kinds_fire_on_matching_house_insert() {
    for kind in [
        NetworkKind::Treat,
        NetworkKind::ATreat,
        NetworkKind::Rete,
        NetworkKind::Gator,
    ] {
        let src = base_data();
        let n = build(kind, "");
        n.prime(&src).unwrap();
        // New house in neighborhood 11 — Iris represents 11.
        let h = house_row(101, 80_000.0, 11);
        src.push(HOUSE, h.clone());
        let fires = fire_all(&n, &src, 1, Polarity::Plus, &h);
        assert_eq!(fires.len(), 1, "{kind:?}");
        assert_eq!(fires[0].polarity, Polarity::Plus);
        assert_eq!(fires[0].bindings[0], sp_row(1, "Iris"), "{kind:?}");
        assert_eq!(fires[0].bindings[1], h, "{kind:?}");
        assert_eq!(fires[0].bindings[2], rep_row(1, 11), "{kind:?}");

        // A house in Bob's neighborhood does not fire (selection on s).
        let h2 = house_row(102, 10_000.0, 12);
        src.push(HOUSE, h2.clone());
        assert!(
            fire_all(&n, &src, 1, Polarity::Plus, &h2).is_empty(),
            "{kind:?}"
        );
    }
}

#[test]
fn non_event_var_updates_flow_too() {
    // Inserting a `represents` row can complete a match with an existing
    // house (token-driven from any variable).
    for kind in [
        NetworkKind::Treat,
        NetworkKind::ATreat,
        NetworkKind::Rete,
        NetworkKind::Gator,
    ] {
        let src = base_data();
        let n = build(kind, "");
        n.prime(&src).unwrap();
        // Iris starts representing neighborhood 10, where house 100 is.
        let r = rep_row(1, 10);
        // (base_data already has rep(1,10): use a new neighborhood link to
        // keep the relation set-consistent.)
        let r13 = rep_row(1, 13);
        src.push(REP, r13.clone());
        assert!(
            fire_all(&n, &src, 2, Polarity::Plus, &r13).is_empty(),
            "{kind:?}"
        );
        // Now a house shows up in 13.
        let h = house_row(103, 5.0, 13);
        src.push(HOUSE, h.clone());
        assert_eq!(
            fire_all(&n, &src, 1, Polarity::Plus, &h).len(),
            1,
            "{kind:?}"
        );
        let _ = r;
    }
}

#[test]
fn minus_tokens_retract_matches() {
    for kind in [
        NetworkKind::Treat,
        NetworkKind::ATreat,
        NetworkKind::Rete,
        NetworkKind::Gator,
    ] {
        let src = base_data();
        let n = build(kind, "");
        n.prime(&src).unwrap();
        let h = house_row(101, 80_000.0, 11);
        src.push(HOUSE, h.clone());
        assert_eq!(
            fire_all(&n, &src, 1, Polarity::Plus, &h).len(),
            1,
            "{kind:?}"
        );
        // Delete the house: one minus firing with the same bindings.
        src.remove(HOUSE, &h);
        let fires = fire_all(&n, &src, 1, Polarity::Minus, &h);
        assert_eq!(fires.len(), 1, "{kind:?}");
        assert_eq!(fires[0].polarity, Polarity::Minus);
        assert_eq!(fires[0].bindings[1], h, "{kind:?}");
    }
}

#[test]
fn multiple_matches_from_one_token() {
    // Two salespeople named Iris... rather: Iris represents two
    // neighborhoods; a house whose neighborhood both map to — instead give
    // REP two rows to nno 11.
    for kind in [
        NetworkKind::Treat,
        NetworkKind::ATreat,
        NetworkKind::Rete,
        NetworkKind::Gator,
    ] {
        let src = base_data();
        src.push(SP, sp_row(3, "Iris")); // second Iris
        src.push(REP, rep_row(3, 11)); // base data already has rep(1, 11)
        let n = build(kind, "");
        n.prime(&src).unwrap();
        let h = house_row(101, 80_000.0, 11);
        src.push(HOUSE, h.clone());
        let fires = fire_all(&n, &src, 1, Polarity::Plus, &h);
        // Iris#1 via rep(1,11) and Iris#3 via rep(3,11).
        assert_eq!(fires.len(), 2, "{kind:?}");
    }
}

#[test]
fn selection_on_event_var_is_callers_job_but_checkable() {
    let src = base_data();
    let n = build(NetworkKind::ATreat, "h.price > 60000");
    n.prime(&src).unwrap();
    let cheap = house_row(101, 10_000.0, 11);
    assert!(!n.selection_matches(1, &cheap).unwrap());
    let pricey = house_row(102, 99_000.0, 11);
    assert!(n.selection_matches(1, &pricey).unwrap());
}

#[test]
fn treat_and_rete_memories_grow_atreat_stays_empty() {
    let src = base_data();
    let treat = build(NetworkKind::Treat, "");
    let atreat = build(NetworkKind::ATreat, "");
    let rete = build(NetworkKind::Rete, "");
    for n in [&treat, &atreat, &rete] {
        n.prime(&src).unwrap();
    }
    assert_eq!(atreat.memory_tuples(), 0, "virtual alphas store nothing");
    assert!(treat.memory_tuples() > 0);
    assert!(
        rete.memory_tuples() >= treat.memory_tuples(),
        "betas add memory"
    );
}

#[test]
fn rete_betas_stay_consistent_through_plus_minus_churn() {
    let src = base_data();
    let rete = build(NetworkKind::Rete, "");
    let treat = build(NetworkKind::Treat, "");
    let gator = build(NetworkKind::Gator, "");
    rete.prime(&src).unwrap();
    treat.prime(&src).unwrap();
    gator.prime(&src).unwrap();
    let mut rng: u64 = 99;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut houses: Vec<Tuple> = vec![];
    for step in 0..200 {
        let add = houses.is_empty() || next() % 3 != 0;
        if add {
            let h = house_row(1000 + step, 1.0, (next() % 5 + 9) as i64);
            houses.push(h.clone());
            src.push(HOUSE, h.clone());
            let a = fire_all(&rete, &src, 1, Polarity::Plus, &h);
            let b = fire_all(&treat, &src, 1, Polarity::Plus, &h);
            let c = fire_all(&gator, &src, 1, Polarity::Plus, &h);
            assert_eq!(a.len(), b.len(), "step {step}");
            assert_eq!(a.len(), c.len(), "gator step {step}");
        } else {
            let h = houses.remove((next() % houses.len() as u64) as usize);
            src.remove(HOUSE, &h);
            let a = fire_all(&rete, &src, 1, Polarity::Minus, &h);
            let b = fire_all(&treat, &src, 1, Polarity::Minus, &h);
            let c = fire_all(&gator, &src, 1, Polarity::Minus, &h);
            assert_eq!(a.len(), b.len(), "step {step}");
            assert_eq!(a.len(), c.len(), "gator step {step}");
        }
    }
}

#[test]
fn single_variable_network_fires_directly() {
    let schema = Schema::from_pairs(&[("x", DataType::Int)]);
    let ctx = BindCtx::new(vec![("t".into(), &schema)]);
    let cnf = to_cnf(&ctx.pred(&parse_expression("t.x > 5").unwrap()).unwrap()).unwrap();
    let g = ConditionGraph::build(cnf, 1);
    let n = Network::build(NetworkKind::ATreat, g, vec![DataSourceId(9)], 0).unwrap();
    let src = MemSource::new();
    let t = Tuple::new(vec![Value::Int(10)]);
    let fires = fire_all(&n, &src, 0, Polarity::Plus, &t);
    assert_eq!(fires.len(), 1);
    assert_eq!(fires[0].bindings, vec![t]);
}

#[test]
fn hyper_join_catch_all_is_enforced() {
    // s.spno + r.spno = h.hno is a 3-variable conjunct → catch-all.
    for kind in [
        NetworkKind::Treat,
        NetworkKind::ATreat,
        NetworkKind::Rete,
        NetworkKind::Gator,
    ] {
        let src = base_data();
        let n = build(kind, "s.spno + r.spno = h.hno");
        n.prime(&src).unwrap();
        // Iris: spno 1, rep(1,11): 1+1=2 ⇒ only hno=2 fires.
        let good = house_row(2, 1.0, 11);
        src.push(HOUSE, good.clone());
        assert_eq!(
            fire_all(&n, &src, 1, Polarity::Plus, &good).len(),
            1,
            "{kind:?}"
        );
        let bad = house_row(3, 1.0, 11);
        src.push(HOUSE, bad.clone());
        assert!(
            fire_all(&n, &src, 1, Polarity::Plus, &bad).is_empty(),
            "{kind:?}"
        );
    }
}

#[test]
fn priming_makes_preexisting_rows_visible() {
    // TREAT without priming misses the pre-existing salesperson rows.
    let src = base_data();
    let n = build(NetworkKind::Treat, "");
    // No prime: inserting a matching house finds empty alpha memories.
    let h = house_row(101, 1.0, 11);
    src.push(HOUSE, h.clone());
    assert!(fire_all(&n, &src, 1, Polarity::Plus, &h).is_empty());
    // After priming, the same insert fires.
    let n2 = build(NetworkKind::Treat, "");
    n2.prime(&src).unwrap();
    let h2 = house_row(102, 1.0, 11);
    src.push(HOUSE, h2.clone());
    assert_eq!(fire_all(&n2, &src, 1, Polarity::Plus, &h2).len(), 1);
}

#[test]
fn build_validations() {
    let g = iris_graph("");
    assert!(Network::build(NetworkKind::Treat, g.clone(), vec![SP], 0).is_err());
    let empty = ConditionGraph::build(tman_expr::Cnf::truth(), 0);
    assert!(Network::build(NetworkKind::Treat, empty, vec![], 0).is_err());
}

#[test]
fn join_order_prefers_connected_variables() {
    let n = build(NetworkKind::Treat, "");
    // Starting from h (var 1), r (var 2) joins h directly; s only joins r.
    assert_eq!(n.join_order(1), vec![2, 0]);
    assert_eq!(n.join_order(0), vec![2, 1]);
}

#[test]
fn cartesian_disconnected_variables_still_enumerate() {
    // Two variables with no join predicate: cross product semantics.
    let sa = Schema::from_pairs(&[("x", DataType::Int)]);
    let sb = Schema::from_pairs(&[("y", DataType::Int)]);
    let ctx = BindCtx::new(vec![("a".into(), &sa), ("b".into(), &sb)]);
    let cnf = to_cnf(
        &ctx.pred(&parse_expression("a.x > 0 and b.y > 0").unwrap())
            .unwrap(),
    )
    .unwrap();
    let g = ConditionGraph::build(cnf, 2);
    let (da, db) = (DataSourceId(20), DataSourceId(21));
    let n = Network::build(NetworkKind::ATreat, g, vec![da, db], 0).unwrap();
    let src = MemSource::new();
    src.set(
        db,
        vec![
            Tuple::new(vec![Value::Int(1)]),
            Tuple::new(vec![Value::Int(2)]),
            Tuple::new(vec![Value::Int(-1)]),
        ],
    );
    let t = Tuple::new(vec![Value::Int(5)]);
    src.push(da, t.clone());
    let fires = fire_all(&n, &src, 0, Polarity::Plus, &t);
    assert_eq!(fires.len(), 2, "two positive b rows");
}

#[test]
fn parallel_priming_matches_sequential() {
    // §6 data-level concurrency: parallel priming produces the same
    // memories (alpha contents are per-variable independent scans).
    for kind in [NetworkKind::Treat, NetworkKind::Rete, NetworkKind::Gator] {
        let src = base_data();
        let seq = build(kind, "");
        let par = build(kind, "");
        seq.prime(&src).unwrap();
        par.prime_parallel(&src).unwrap();
        assert_eq!(seq.memory_tuples(), par.memory_tuples(), "{kind:?}");
        // Both fire identically afterwards.
        let h = house_row(101, 80_000.0, 11);
        src.push(HOUSE, h.clone());
        assert_eq!(
            fire_all(&seq, &src, 1, Polarity::Plus, &h).len(),
            fire_all(&par, &src, 1, Polarity::Plus, &h).len(),
            "{kind:?}"
        );
    }
}
