//! Per-token trace spans: causal lineage through the §6 task fan-out.
//!
//! Aggregate counters (the rest of this crate) answer "how much work?";
//! they cannot answer "why was *this* token slow?". §6 shreds one update
//! descriptor into Token → SigPartition → Action tasks executed on
//! different driver threads, and this module reassembles that execution
//! into one tree per token:
//!
//! * [`TraceEvent`] — one completed span: `(trace_id, span_id, parent_id,
//!   kind, thread, start, duration, two kind-specific args)`, packed into
//!   seven `u64` words so it can live in a lock-free ring slot;
//! * [`SpanGuard`] — an RAII guard that records a span on drop; spans
//!   created from an inert [`TraceHandle`] cost one branch and never read
//!   the clock (the `tracing: Off` path);
//! * [`TraceRing`] — a bounded MPSC flight-recorder ring that keeps the
//!   newest events, counts overwrites exactly, and never yields a torn
//!   event to readers (per-slot seqlock over plain atomics — no `unsafe`);
//! * [`Tracer`] — hands out per-token [`TraceHandle`]s and applies
//!   *tail-based* 1-in-N sampling: every active token accumulates spans
//!   privately, and the keep/discard decision is made when the last clone
//!   of the handle drops, so a token whose end-to-end latency crosses the
//!   slow threshold is force-retained even at 1-in-1000 sampling.
//!
//! Surfaces: [`Tracer::snapshot`] (typed trees), [`TraceTree::render`]
//! (indented console tree), [`render_chrome_trace`] (Chrome trace-event
//! JSON, loadable in Perfetto) and [`validate_chrome_trace`] (a serde-free
//! structural parser used by CI's smoke test).

use std::fmt;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Span id of the per-token root span.
pub const ROOT_SPAN: u32 = 0;
/// Parent id carried by the root span (it has no parent).
pub const NO_PARENT: u32 = u32::MAX;

/// Words one [`TraceEvent`] packs into (one ring slot).
pub const EVENT_WORDS: usize = 7;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (first use).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Wall-clock nanoseconds since the Unix epoch. Used for stamps that
/// cross process boundaries (wire-protocol send/fire times), where the
/// process-local trace epoch is meaningless; a receiver maps a foreign
/// wall stamp into its own trace timeline via
/// `now_ns() - (unix_now_ns() - stamp)`.
#[inline]
pub fn unix_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Small dense id for the current OS thread (drivers get 0, 1, 2, ... in
/// first-use order); lets a trace show which spans ran on which driver.
pub fn thread_tag() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static TAG: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

/// What a span measured. The taxonomy follows the token's §3 life cycle:
/// capture → queue → `TmanTest` → predicate-index probe → rest-of-predicate
/// test → trigger-cache pin → (partition fan-out) → action → notify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Root span: the token's whole life, from capture to the last task
    /// that referenced it. `arg_a` = 1 if retained by the slow-token rule,
    /// `arg_b` = number of child spans recorded.
    Token,
    /// Capture → dequeue wait in the update-descriptor queue.
    QueueWait,
    /// One `process_token` pass (signature walk + fan-out decisions).
    Process,
    /// Maintenance routing of an update's old image (synthetic delete).
    Maintenance,
    /// One signature probe. `arg_a` = signature id, `arg_b` =
    /// `(partition << 32) | nparts`.
    SigProbe,
    /// Rest-of-predicate (residual) testing within one probe, aggregated:
    /// `arg_b` = number of residual tests run.
    RestTest,
    /// Trigger-cache pin. `arg_a` = trigger id, `arg_b` = 1 on a cache hit.
    CachePin,
    /// Pushing condition-level partition tasks (Figure 5). `arg_a` =
    /// signature id, `arg_b` = partitions pushed.
    Fanout,
    /// One rule-action execution. `arg_a` = trigger id.
    Action,
    /// Event delivery from an action. `arg_b` = subscribers notified.
    Notify,
    /// One predicate-index governor pass (adaptive constant-set
    /// reorganization, run from driver maintenance). `arg_a` = migrations
    /// performed, `arg_b` = resident constant-set bytes after the pass.
    Governor,
    /// One condition-partition controller pass (adaptive Figure-5 fan-out,
    /// run from driver maintenance). `arg_a` = fan-out transitions
    /// performed, `arg_b` = the pass's target fan-out.
    PartitionCtl,
    /// One wire-tier group-commit batch (decode + batched enqueue + sync).
    /// `arg_a` = tokens in the batch, `arg_b` = connections contributing.
    Wire,
    /// Client-side send of one token over the wire, reconstructed on the
    /// server from the batch's wall-clock send stamp: covers serialize +
    /// TCP transit + server decode. `arg_a` = tokens in the carrying
    /// batch.
    WireSend,
    /// Durable delivery-log append + mailbox push for one notification.
    /// `arg_a` = the per-subscriber sequence number assigned.
    WireDeliver,
    /// Delivery close: fire (log append) → subscriber ack received.
    /// `arg_a` = the acked per-subscriber sequence number.
    WireAck,
}

impl SpanKind {
    /// Stable code used in the packed event words.
    pub fn code(self) -> u32 {
        match self {
            SpanKind::Token => 0,
            SpanKind::QueueWait => 1,
            SpanKind::Process => 2,
            SpanKind::Maintenance => 3,
            SpanKind::SigProbe => 4,
            SpanKind::RestTest => 5,
            SpanKind::CachePin => 6,
            SpanKind::Fanout => 7,
            SpanKind::Action => 8,
            SpanKind::Notify => 9,
            SpanKind::Governor => 10,
            SpanKind::PartitionCtl => 11,
            SpanKind::Wire => 12,
            SpanKind::WireSend => 13,
            SpanKind::WireDeliver => 14,
            SpanKind::WireAck => 15,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(c: u32) -> Option<SpanKind> {
        Some(match c {
            0 => SpanKind::Token,
            1 => SpanKind::QueueWait,
            2 => SpanKind::Process,
            3 => SpanKind::Maintenance,
            4 => SpanKind::SigProbe,
            5 => SpanKind::RestTest,
            6 => SpanKind::CachePin,
            7 => SpanKind::Fanout,
            8 => SpanKind::Action,
            9 => SpanKind::Notify,
            10 => SpanKind::Governor,
            11 => SpanKind::PartitionCtl,
            12 => SpanKind::Wire,
            13 => SpanKind::WireSend,
            14 => SpanKind::WireDeliver,
            15 => SpanKind::WireAck,
            _ => return None,
        })
    }

    /// Snake-case name used in renderings and the Chrome trace export.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Token => "token",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Process => "process",
            SpanKind::Maintenance => "maintenance",
            SpanKind::SigProbe => "sig_probe",
            SpanKind::RestTest => "rest_test",
            SpanKind::CachePin => "cache_pin",
            SpanKind::Fanout => "fanout",
            SpanKind::Action => "action",
            SpanKind::Notify => "notify",
            SpanKind::Governor => "governor",
            SpanKind::PartitionCtl => "partition_ctl",
            SpanKind::Wire => "wire",
            SpanKind::WireSend => "wire_send",
            SpanKind::WireDeliver => "wire_deliver",
            SpanKind::WireAck => "wire_ack",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Token this span belongs to.
    pub trace_id: u64,
    /// Span id, unique within the trace ([`ROOT_SPAN`] is the root).
    pub span_id: u32,
    /// Parent span id ([`NO_PARENT`] for the root).
    pub parent_id: u32,
    /// What was measured.
    pub kind: SpanKind,
    /// [`thread_tag`] of the recording thread.
    pub thread: u32,
    /// Start, ns since the trace epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Kind-specific argument (see [`SpanKind`]).
    pub arg_a: u64,
    /// Kind-specific argument (see [`SpanKind`]).
    pub arg_b: u64,
}

impl TraceEvent {
    /// Pack into ring-slot words.
    pub fn encode(&self) -> [u64; EVENT_WORDS] {
        [
            self.trace_id,
            (u64::from(self.span_id) << 32) | u64::from(self.parent_id),
            (u64::from(self.kind.code()) << 32) | u64::from(self.thread),
            self.start_ns,
            self.dur_ns,
            self.arg_a,
            self.arg_b,
        ]
    }

    /// Unpack ring-slot words (`None` for an unrecognized kind code).
    pub fn decode(w: [u64; EVENT_WORDS]) -> Option<TraceEvent> {
        Some(TraceEvent {
            trace_id: w[0],
            span_id: (w[1] >> 32) as u32,
            parent_id: w[1] as u32,
            kind: SpanKind::from_code((w[2] >> 32) as u32)?,
            thread: w[2] as u32,
            start_ns: w[3],
            dur_ns: w[4],
            arg_a: w[5],
            arg_b: w[6],
        })
    }
}

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Slot {
    /// Seqlock word. A slot that holds the completed event of ticket `t`
    /// reads `2t + 2`; `2t + 1` means ticket `t`'s writer is mid-write;
    /// `0` means never written. Tickets map to slots by `t % capacity`, so
    /// every value is unambiguous per slot.
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

/// Bounded MPSC flight-recorder ring for [`TraceEvent`]s.
///
/// Writers claim a monotonically increasing ticket and gain *exclusive*
/// ownership of the ticket's slot via a CAS on the slot's seqlock word (a
/// writer lapping a straggler spins until the straggler finishes — tickets
/// on one slot are a full ring apart, so in practice the CAS never waits).
/// Readers validate the seqlock before and after copying the words and
/// skip slots that are mid-write, so a snapshot never contains a torn
/// event. The ring keeps the newest `capacity` events;
/// [`dropped`](Self::dropped) counts overwritten events exactly.
pub struct TraceRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl TraceRing {
    /// Ring holding the newest `capacity` events (min 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        let slots = (0..capacity).map(|_| Slot::default()).collect();
        TraceRing {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Event capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append one event, overwriting the oldest if full.
    pub fn push(&self, ev: &TraceEvent) {
        let cap = self.slots.len() as u64;
        let ticket = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(ticket % cap) as usize];
        // The slot is free for this ticket once the previous lap's writer
        // (ticket - cap) has published, or immediately on the first lap.
        let free = if ticket >= cap {
            2 * (ticket - cap) + 2
        } else {
            0
        };
        while slot
            .seq
            .compare_exchange_weak(free, 2 * ticket + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            std::hint::spin_loop();
        }
        for (w, v) in slot.words.iter().zip(ev.encode()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to overwrite (exact: everything past capacity).
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Copy out the retained events, oldest first. Slots being written
    /// concurrently are skipped rather than returned torn.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        let lo = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - lo) as usize);
        for t in lo..head {
            let slot = &self.slots[(t % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != 2 * t + 2 {
                continue; // mid-write or already lapped
            }
            let mut words = [0u64; EVENT_WORDS];
            for (dst, w) in words.iter_mut().zip(slot.words.iter()) {
                *dst = w.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != 2 * t + 2 {
                continue; // overwritten while copying
            }
            if let Some(ev) = TraceEvent::decode(words) {
                out.push(ev);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Contexts, handles, guards
// ---------------------------------------------------------------------------

/// Private per-token accumulation state. Spans buffer here while the token
/// is in flight; the last [`TraceHandle`] clone to drop makes the
/// tail-sampling decision and either flushes everything into the tracer's
/// ring or discards it.
struct TraceContext {
    trace_id: u64,
    sampled_in: bool,
    start_ns: u64,
    next_span: AtomicU32,
    spans: Mutex<Vec<TraceEvent>>,
    tracer: Arc<Tracer>,
}

impl TraceContext {
    fn alloc_span(&self) -> u32 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn record(&self, ev: TraceEvent) {
        self.spans.lock().expect("trace spans lock").push(ev);
    }
}

impl Drop for TraceContext {
    fn drop(&mut self) {
        let end = now_ns();
        let dur = end.saturating_sub(self.start_ns);
        let slow = self.tracer.slow_ns > 0 && dur >= self.tracer.slow_ns;
        if !(self.sampled_in || slow) {
            self.tracer.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let spans = self.spans.get_mut().expect("trace spans lock");
        self.tracer.ring.push(&TraceEvent {
            trace_id: self.trace_id,
            span_id: ROOT_SPAN,
            parent_id: NO_PARENT,
            kind: SpanKind::Token,
            thread: thread_tag(),
            start_ns: self.start_ns,
            dur_ns: dur,
            arg_a: u64::from(slow),
            arg_b: spans.len() as u64,
        });
        for ev in spans.drain(..) {
            self.tracer.ring.push(&ev);
        }
        self.tracer.retained.fetch_add(1, Ordering::Relaxed);
        if slow && !self.sampled_in {
            self.tracer.slow_retained.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Cloneable per-token trace handle, carried inside the update descriptor
/// through every queue and task that touches the token. An inert handle
/// ([`TraceHandle::none`], the `tracing: Off` path) is a single `None`
/// check everywhere — no clock reads, no allocation.
#[derive(Clone, Default)]
pub struct TraceHandle {
    ctx: Option<Arc<TraceContext>>,
}

impl TraceHandle {
    /// The inert handle (tracing off / token not traced).
    pub fn none() -> TraceHandle {
        TraceHandle { ctx: None }
    }

    /// Is this token being traced?
    #[inline]
    pub fn is_active(&self) -> bool {
        self.ctx.is_some()
    }

    /// Trace id, if traced.
    pub fn trace_id(&self) -> Option<u64> {
        self.ctx.as_ref().map(|c| c.trace_id)
    }

    /// Capture time (ns since trace epoch), if traced.
    pub fn start_ns(&self) -> Option<u64> {
        self.ctx.as_ref().map(|c| c.start_ns)
    }

    /// Open a child span under `parent` (use [`ROOT_SPAN`] for top-level
    /// spans). The span records itself when the guard drops.
    #[inline]
    pub fn span(&self, kind: SpanKind, parent: u32) -> SpanGuard {
        match &self.ctx {
            None => SpanGuard::inert(),
            Some(ctx) => SpanGuard {
                id: ctx.alloc_span(),
                ctx: Some(ctx.clone()),
                parent,
                kind,
                start_ns: now_ns(),
                arg_a: 0,
                arg_b: 0,
            },
        }
    }

    /// Record an already-measured span (e.g. queue wait, whose start was
    /// stamped by another thread). Returns the span id ([`ROOT_SPAN`] when
    /// inert).
    pub fn record_complete(
        &self,
        kind: SpanKind,
        parent: u32,
        start_ns: u64,
        dur_ns: u64,
        arg_a: u64,
        arg_b: u64,
    ) -> u32 {
        let Some(ctx) = &self.ctx else {
            return ROOT_SPAN;
        };
        let id = ctx.alloc_span();
        ctx.record(TraceEvent {
            trace_id: ctx.trace_id,
            span_id: id,
            parent_id: parent,
            kind,
            thread: thread_tag(),
            start_ns,
            dur_ns,
            arg_a,
            arg_b,
        });
        id
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.trace_id() {
            Some(id) => write!(f, "TraceHandle({id})"),
            None => write!(f, "TraceHandle(-)"),
        }
    }
}

/// RAII span: records one [`TraceEvent`] when dropped. Inert guards (from
/// an inert handle) do nothing and never read the clock.
pub struct SpanGuard {
    ctx: Option<Arc<TraceContext>>,
    id: u32,
    parent: u32,
    kind: SpanKind,
    start_ns: u64,
    arg_a: u64,
    arg_b: u64,
}

impl SpanGuard {
    /// A guard that records nothing.
    pub fn inert() -> SpanGuard {
        SpanGuard {
            ctx: None,
            id: ROOT_SPAN,
            parent: NO_PARENT,
            kind: SpanKind::Token,
            start_ns: 0,
            arg_a: 0,
            arg_b: 0,
        }
    }

    /// Will this guard record a span?
    #[inline]
    pub fn is_active(&self) -> bool {
        self.ctx.is_some()
    }

    /// This span's id — pass as `parent` to child spans / tasks
    /// ([`ROOT_SPAN`] when inert).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Set both kind-specific args.
    pub fn set_args(&mut self, a: u64, b: u64) {
        self.arg_a = a;
        self.arg_b = b;
    }

    /// Set `arg_b` only.
    pub fn set_arg_b(&mut self, b: u64) {
        self.arg_b = b;
    }

    /// Record an already-measured child span of this one (used for
    /// aggregated leaves like rest-of-predicate testing).
    pub fn child_complete(
        &self,
        kind: SpanKind,
        start_ns: u64,
        dur_ns: u64,
        arg_a: u64,
        arg_b: u64,
    ) {
        let Some(ctx) = &self.ctx else { return };
        let id = ctx.alloc_span();
        ctx.record(TraceEvent {
            trace_id: ctx.trace_id,
            span_id: id,
            parent_id: self.id,
            kind,
            thread: thread_tag(),
            start_ns,
            dur_ns,
            arg_a,
            arg_b,
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(ctx) = &self.ctx {
            let end = now_ns();
            ctx.record(TraceEvent {
                trace_id: ctx.trace_id,
                span_id: self.id,
                parent_id: self.parent,
                kind: self.kind,
                thread: thread_tag(),
                start_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
                arg_a: self.arg_a,
                arg_b: self.arg_b,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// Aggregate tracer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TracerStats {
    /// Tokens that got a live trace handle.
    pub started: u64,
    /// Tokens whose spans were flushed to the ring.
    pub retained: u64,
    /// Tokens discarded by sampling.
    pub discarded: u64,
    /// Tokens retained *only* because they crossed the slow threshold.
    pub slow_retained: u64,
    /// Events ever flushed to the ring.
    pub events_logged: u64,
    /// Events lost to ring overwrite.
    pub events_dropped: u64,
}

/// Factory for per-token trace handles plus the flight-recorder ring the
/// retained spans land in.
pub struct Tracer {
    ring: TraceRing,
    sample_every: u64,
    slow_ns: u64,
    next_trace_id: AtomicU64,
    next_foreign_span: AtomicU32,
    sample_clock: AtomicU64,
    started: AtomicU64,
    retained: AtomicU64,
    discarded: AtomicU64,
    slow_retained: AtomicU64,
}

impl Tracer {
    /// `capacity_events`: ring size. `sample_every`: keep 1 in N tokens
    /// (0 or 1 keeps every token). `slow`: end-to-end latency at or above
    /// which a token is retained regardless of sampling (zero disables the
    /// rule).
    pub fn new(capacity_events: usize, sample_every: u64, slow: Duration) -> Tracer {
        Tracer {
            ring: TraceRing::new(capacity_events),
            sample_every: sample_every.max(1),
            slow_ns: slow.as_nanos() as u64,
            next_trace_id: AtomicU64::new(1),
            next_foreign_span: AtomicU32::new(1),
            sample_clock: AtomicU64::new(0),
            started: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            slow_retained: AtomicU64::new(0),
        }
    }

    /// Begin tracing one token. The handle travels with the token; spans
    /// accumulate until the last clone drops, then the tail-sampling
    /// decision flushes or discards them.
    pub fn begin(self: &Arc<Tracer>) -> TraceHandle {
        self.started.fetch_add(1, Ordering::Relaxed);
        let n = self.sample_clock.fetch_add(1, Ordering::Relaxed);
        TraceHandle {
            ctx: Some(Arc::new(TraceContext {
                trace_id: self.next_trace_id.fetch_add(1, Ordering::Relaxed),
                sampled_in: n.is_multiple_of(self.sample_every),
                start_ns: now_ns(),
                next_span: AtomicU32::new(ROOT_SPAN + 1),
                spans: Mutex::new(Vec::with_capacity(8)),
                tracer: self.clone(),
            })),
        }
    }

    /// Begin tracing a token whose trace id was assigned by a *peer*
    /// process and propagated over the wire. The id is adopted verbatim
    /// (peers use a disjoint id space: wire clients set the high bit,
    /// locally begun traces count up from 1), so spans recorded here and
    /// spans pushed by the peer assemble into one tree. Sampling is the
    /// same tail-based policy as [`begin`](Self::begin).
    pub fn begin_with_id(self: &Arc<Tracer>, trace_id: u64) -> TraceHandle {
        self.started.fetch_add(1, Ordering::Relaxed);
        let n = self.sample_clock.fetch_add(1, Ordering::Relaxed);
        TraceHandle {
            ctx: Some(Arc::new(TraceContext {
                trace_id,
                sampled_in: n.is_multiple_of(self.sample_every),
                start_ns: now_ns(),
                next_span: AtomicU32::new(ROOT_SPAN + 1),
                spans: Mutex::new(Vec::with_capacity(8)),
                tracer: self.clone(),
            })),
        }
    }

    /// Push one already-complete event straight into the ring, bypassing
    /// any per-token context. For spans that finish *after* their token's
    /// trace was finalized (e.g. a wire subscriber's ack closing the
    /// delivery span): the event lands next to the already-flushed tree
    /// with the same trace id. Use span ids from
    /// [`foreign_span_id`](Self::foreign_span_id) so they cannot collide
    /// with context-allocated ids.
    pub fn push_foreign(&self, ev: &TraceEvent) {
        self.ring.push(ev);
    }

    /// Allocate a span id from the foreign (high) range, disjoint from the
    /// per-context low range, for [`push_foreign`](Self::push_foreign).
    pub fn foreign_span_id(&self) -> u32 {
        0x8000_0000 | (self.next_foreign_span.fetch_add(1, Ordering::Relaxed) & 0x7fff_ffff)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> TracerStats {
        TracerStats {
            started: self.started.load(Ordering::Relaxed),
            retained: self.retained.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            slow_retained: self.slow_retained.load(Ordering::Relaxed),
            events_logged: self.ring.pushed(),
            events_dropped: self.ring.dropped(),
        }
    }

    /// Raw retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.snapshot()
    }

    /// Assemble the retained events into per-token trees.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot::assemble(self.ring.snapshot(), self.stats())
    }

    /// Chrome trace-event JSON of everything currently retained.
    pub fn render_chrome_trace(&self) -> String {
        render_chrome_trace(&self.ring.snapshot())
    }
}

// ---------------------------------------------------------------------------
// Snapshot & rendering
// ---------------------------------------------------------------------------

/// Typed view of the flight recorder: complete per-token span trees plus
/// tracer counters.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Traces oldest-first (by root start time).
    pub traces: Vec<TraceTree>,
    /// Tracer counters at snapshot time.
    pub stats: TracerStats,
}

impl TraceSnapshot {
    fn assemble(events: Vec<TraceEvent>, stats: TracerStats) -> TraceSnapshot {
        let mut order: Vec<u64> = Vec::new();
        let mut by_trace: std::collections::HashMap<u64, Vec<TraceEvent>> =
            std::collections::HashMap::new();
        for ev in events {
            let bucket = by_trace.entry(ev.trace_id).or_default();
            if bucket.is_empty() {
                order.push(ev.trace_id);
            }
            bucket.push(ev);
        }
        let mut traces: Vec<TraceTree> = order
            .into_iter()
            .map(|id| {
                let mut events = by_trace.remove(&id).unwrap_or_default();
                events.sort_by_key(|e| (e.start_ns, e.span_id));
                TraceTree {
                    trace_id: id,
                    events,
                }
            })
            .collect();
        traces.sort_by_key(|t| t.root().map(|r| r.start_ns).unwrap_or(u64::MAX));
        TraceSnapshot { traces, stats }
    }

    /// Trace with the given id, if retained.
    pub fn trace(&self, trace_id: u64) -> Option<&TraceTree> {
        self.traces.iter().find(|t| t.trace_id == trace_id)
    }
}

/// One token's spans, reassembled.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The token's trace id.
    pub trace_id: u64,
    /// All spans of the trace, sorted by start time.
    pub events: Vec<TraceEvent>,
}

impl TraceTree {
    /// The root ([`SpanKind::Token`]) span, if it survived in the ring.
    pub fn root(&self) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.span_id == ROOT_SPAN)
    }

    /// Span by id.
    pub fn span(&self, id: u32) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.span_id == id)
    }

    /// End-to-end duration (root span duration, else max child extent).
    pub fn duration_ns(&self) -> u64 {
        match self.root() {
            Some(r) => r.dur_ns,
            None => {
                let start = self.events.iter().map(|e| e.start_ns).min().unwrap_or(0);
                self.events
                    .iter()
                    .map(|e| e.start_ns + e.dur_ns)
                    .max()
                    .unwrap_or(0)
                    .saturating_sub(start)
            }
        }
    }

    /// Indented span tree with durations, for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let slow = self.root().map(|r| r.arg_a != 0).unwrap_or(false);
        out.push_str(&format!(
            "trace {}  ({}, {} spans{})\n",
            self.trace_id,
            human_ns(self.duration_ns()),
            self.events.len(),
            if slow { ", slow" } else { "" }
        ));
        // parent -> children, in start order (events are pre-sorted).
        let ids: std::collections::HashSet<u32> = self.events.iter().map(|e| e.span_id).collect();
        let mut roots: Vec<&TraceEvent> = Vec::new();
        let mut children: std::collections::HashMap<u32, Vec<&TraceEvent>> =
            std::collections::HashMap::new();
        for ev in &self.events {
            if ev.span_id != ROOT_SPAN && ids.contains(&ev.parent_id) {
                children.entry(ev.parent_id).or_default().push(ev);
            } else {
                // The root, plus orphans whose parent was overwritten.
                roots.push(ev);
            }
        }
        let mut stack: Vec<(&TraceEvent, usize)> = Vec::new();
        for r in roots.iter().rev() {
            stack.push((r, 1));
        }
        while let Some((ev, depth)) = stack.pop() {
            out.push_str(&format!(
                "{}{:<12} {:>9}  tid={}{}\n",
                "  ".repeat(depth),
                ev.kind.name(),
                human_ns(ev.dur_ns),
                ev.thread,
                kind_args(ev),
            ));
            if let Some(kids) = children.get(&ev.span_id) {
                for k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
        out
    }
}

fn kind_args(ev: &TraceEvent) -> String {
    match ev.kind {
        SpanKind::SigProbe => format!(
            "  [sig={} part={}/{}]",
            ev.arg_a,
            ev.arg_b >> 32,
            ev.arg_b & 0xffff_ffff
        ),
        SpanKind::RestTest => format!("  [tests={}]", ev.arg_b),
        SpanKind::CachePin => format!(
            "  [trigger={} {}]",
            ev.arg_a,
            if ev.arg_b != 0 { "hit" } else { "miss" }
        ),
        SpanKind::Fanout => format!("  [sig={} parts={}]", ev.arg_a, ev.arg_b),
        SpanKind::Action => format!("  [trigger={}]", ev.arg_a),
        SpanKind::Notify => format!("  [subscribers={}]", ev.arg_b),
        SpanKind::Governor => format!("  [migrations={} mem={}B]", ev.arg_a, ev.arg_b),
        SpanKind::PartitionCtl => {
            format!("  [transitions={} target_fanout={}]", ev.arg_a, ev.arg_b)
        }
        SpanKind::Wire => format!("  [tokens={} conns={}]", ev.arg_a, ev.arg_b),
        SpanKind::WireSend => format!("  [batch_tokens={}]", ev.arg_a),
        SpanKind::WireDeliver => format!("  [seq={}]", ev.arg_a),
        SpanKind::WireAck => format!("  [seq={}]", ev.arg_a),
        _ => String::new(),
    }
}

/// `1234` → `1.23µs`-style humanized nanoseconds.
pub fn human_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export + serde-free validation
// ---------------------------------------------------------------------------

/// Render events as Chrome trace-event JSON (the `{"traceEvents": [...]}`
/// object form), loadable in Perfetto / `chrome://tracing`. Complete
/// (`"ph":"X"`) events; `pid` is the trace id so Perfetto groups one
/// token's spans together, `tid` is the recording thread's [`thread_tag`].
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"tman\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":{},\"span\":{},\"parent\":{},\
             \"arg_a\":{},\"arg_b\":{}}}}}",
            ev.kind.name(),
            ev.start_ns as f64 / 1_000.0,
            ev.dur_ns as f64 / 1_000.0,
            ev.trace_id,
            ev.thread,
            ev.trace_id,
            ev.span_id,
            ev.parent_id as i64,
            ev.arg_a,
            ev.arg_b,
        ));
    }
    out.push_str("]}");
    out
}

/// Structural validation of Chrome trace-event JSON without serde: parses
/// the JSON with a minimal recursive-descent parser and checks that the
/// root object has a `traceEvents` array whose elements are objects with a
/// string `name`/`ph` and numeric `ts`/`dur`/`pid`/`tid`. Returns the
/// event count. Used by the CI smoke step (`tracecheck`).
pub fn validate_chrome_trace(input: &str) -> Result<usize, String> {
    validate_chrome_trace_names(input).map(|(n, _)| n)
}

/// [`validate_chrome_trace`], additionally returning the sorted, deduped
/// span names seen in the file. Lets `tracecheck` assert that specific
/// span kinds (e.g. `wire_send`) made it into an exported trace, not just
/// that the JSON is well-formed.
pub fn validate_chrome_trace_names(input: &str) -> Result<(usize, Vec<String>), String> {
    let mut p = Json {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    let JsonValue::Object(fields) = root else {
        return Err("root is not an object".into());
    };
    let Some(JsonValue::Array(events)) = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
    else {
        return Err("missing traceEvents array".into());
    };
    let mut names: Vec<String> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let JsonValue::Object(f) = ev else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        let get = |k: &str| f.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        match get("name") {
            Some(JsonValue::String(name)) => names.push(name.clone()),
            _ => return Err(format!("traceEvents[{i}]: missing string name")),
        }
        match get("ph") {
            Some(JsonValue::String(ph)) if ph == "X" => {}
            _ => return Err(format!("traceEvents[{i}]: ph is not \"X\"")),
        }
        for k in ["ts", "dur", "pid", "tid"] {
            match get(k) {
                Some(JsonValue::Number) => {}
                _ => return Err(format!("traceEvents[{i}]: missing numeric {k}")),
            }
        }
    }
    let count = names.len();
    names.sort();
    names.dedup();
    Ok((count, names))
}

enum JsonValue {
    Null,
    Bool,
    Number,
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Json<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b't' => self.lit("true", JsonValue::Bool),
            b'f' => self.lit("false", JsonValue::Bool),
            b'n' => self.lit("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at offset {}", c as char, self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                c => return Err(format!("expected ',' or '}}', got '{}'", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                c => return Err(format!("expected ',' or ']', got '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    // UTF-8 continuation bytes pass through unchanged.
                    let start = self.pos;
                    let mut end = self.pos + 1;
                    if c >= 0x80 {
                        while self
                            .bytes
                            .get(end)
                            .map(|b| b & 0xc0 == 0x80)
                            .unwrap_or(false)
                        {
                            end += 1;
                        }
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid utf-8 in string")?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(|_| JsonValue::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, span: u32, parent: u32, kind: SpanKind) -> TraceEvent {
        TraceEvent {
            trace_id: trace,
            span_id: span,
            parent_id: parent,
            kind,
            thread: 0,
            start_ns: 10 * u64::from(span),
            dur_ns: 5,
            arg_a: 1,
            arg_b: 2,
        }
    }

    #[test]
    fn event_word_roundtrip() {
        let e = TraceEvent {
            trace_id: u64::MAX - 3,
            span_id: 77,
            parent_id: NO_PARENT,
            kind: SpanKind::CachePin,
            thread: 9,
            start_ns: 123_456_789,
            dur_ns: 42,
            arg_a: u64::MAX,
            arg_b: 0,
        };
        assert_eq!(TraceEvent::decode(e.encode()), Some(e));
        let mut bad = e.encode();
        bad[2] = 999u64 << 32; // unknown kind code
        assert_eq!(TraceEvent::decode(bad), None);
    }

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_drops_exactly() {
        let ring = TraceRing::new(8);
        for i in 0..20u64 {
            ring.push(&ev(i, 1, ROOT_SPAN, SpanKind::Process));
        }
        assert_eq!(ring.pushed(), 20);
        assert_eq!(ring.dropped(), 12);
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.trace_id).collect();
        assert_eq!(got, (12..20).collect::<Vec<_>>());
        // A ring that never filled drops nothing.
        let small = TraceRing::new(64);
        small.push(&ev(1, 1, ROOT_SPAN, SpanKind::Process));
        assert_eq!(small.dropped(), 0);
        assert_eq!(small.snapshot().len(), 1);
    }

    #[test]
    fn ring_concurrent_writers_never_yield_torn_events() {
        use std::thread;
        // Small ring + heavy lapping: each writer thread stamps every word
        // of its events with a thread-unique pattern; any cross-thread mix
        // within one decoded event is a torn write.
        let ring = Arc::new(TraceRing::new(64));
        let writers = 4;
        let per_thread = 20_000u64;
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let ring = ring.clone();
                let stop = stop.clone();
                thread::spawn(move || {
                    let mut seen = 0usize;
                    while stop.load(Ordering::Acquire) == 0 {
                        for e in ring.snapshot() {
                            // Writer w emits trace_id=w and all args = w.
                            assert_eq!(e.arg_a, e.trace_id, "torn event: {e:?}");
                            assert_eq!(e.arg_b, e.trace_id, "torn event: {e:?}");
                            assert_eq!(u64::from(e.thread), e.trace_id, "torn event: {e:?}");
                            assert_eq!(e.start_ns, e.trace_id * 1_000_003, "torn event: {e:?}");
                            seen += 1;
                        }
                    }
                    seen
                })
            })
            .collect();
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let ring = ring.clone();
                thread::spawn(move || {
                    let w = w as u64;
                    for _ in 0..per_thread {
                        ring.push(&TraceEvent {
                            trace_id: w,
                            span_id: 1,
                            parent_id: ROOT_SPAN,
                            kind: SpanKind::SigProbe,
                            thread: w as u32,
                            start_ns: w * 1_000_003,
                            dur_ns: w,
                            arg_a: w,
                            arg_b: w,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        stop.store(1, Ordering::Release);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader never observed events");
        }
        assert_eq!(ring.pushed(), writers as u64 * per_thread);
        assert_eq!(ring.dropped(), writers as u64 * per_thread - 64);
        // Final quiescent snapshot: full, all untorn.
        let finals = ring.snapshot();
        assert_eq!(finals.len(), 64);
        for e in finals {
            assert_eq!(e.arg_a, e.trace_id);
        }
    }

    #[test]
    fn tail_sampling_keeps_one_in_n() {
        let tracer = Arc::new(Tracer::new(4096, 10, Duration::ZERO));
        for _ in 0..100 {
            let h = tracer.begin();
            drop(h.span(SpanKind::Process, ROOT_SPAN));
            drop(h);
        }
        let s = tracer.stats();
        assert_eq!(s.started, 100);
        assert_eq!(s.retained, 10);
        assert_eq!(s.discarded, 90);
        assert_eq!(s.slow_retained, 0);
        // Each retained trace = root + 1 span.
        assert_eq!(s.events_logged, 20);
    }

    #[test]
    fn slow_token_force_retention_survives_1_in_1000_sampling() {
        // Sampling keeps only the first token (n=0); the slow rule must
        // keep the artificially slow later token too.
        let tracer = Arc::new(Tracer::new(4096, 1000, Duration::from_millis(50)));
        drop(tracer.begin()); // sampled in
        for _ in 0..5 {
            drop(tracer.begin()); // sampled out, fast -> discarded
        }
        let slow = tracer.begin(); // sampled out (n=6)
        let slow_id = slow.trace_id().unwrap();
        std::thread::sleep(Duration::from_millis(60));
        drop(slow);
        let s = tracer.stats();
        assert_eq!(s.started, 7);
        assert_eq!(s.retained, 2);
        assert_eq!(s.slow_retained, 1);
        let snap = tracer.snapshot();
        let tree = snap.trace(slow_id).expect("slow trace retained");
        assert_eq!(tree.root().unwrap().arg_a, 1, "root carries the slow flag");
        assert!(tree.duration_ns() >= 50_000_000);
    }

    #[test]
    fn span_tree_assembles_with_cross_thread_parents() {
        let tracer = Arc::new(Tracer::new(4096, 1, Duration::ZERO));
        let h = tracer.begin();
        let id = h.trace_id().unwrap();
        let parent_id;
        {
            let mut proc = h.span(SpanKind::Process, ROOT_SPAN);
            proc.set_args(0, 0);
            parent_id = proc.id();
            let probe = h.span(SpanKind::SigProbe, proc.id());
            probe.child_complete(SpanKind::RestTest, now_ns(), 5, 0, 3);
        }
        // Simulate a task finishing on another thread.
        let h2 = h.clone();
        std::thread::spawn(move || {
            let mut a = h2.span(SpanKind::Action, parent_id);
            a.set_args(7, 0);
        })
        .join()
        .unwrap();
        drop(h);
        let snap = tracer.snapshot();
        let tree = snap.trace(id).expect("retained");
        assert!(tree.root().is_some());
        let action = tree
            .events
            .iter()
            .find(|e| e.kind == SpanKind::Action)
            .unwrap();
        assert_eq!(action.parent_id, parent_id);
        let rest = tree
            .events
            .iter()
            .find(|e| e.kind == SpanKind::RestTest)
            .unwrap();
        assert_eq!(rest.arg_b, 3);
        // Every non-root span's parent resolves inside the tree.
        for e in &tree.events {
            if e.span_id != ROOT_SPAN {
                assert!(tree.span(e.parent_id).is_some(), "orphan span {e:?}");
            }
        }
        let rendered = tree.render();
        assert!(rendered.contains("sig_probe"));
        assert!(rendered.contains("action"));
        assert!(rendered.contains("[tests=3]"));
    }

    #[test]
    fn adopted_trace_ids_and_foreign_events_assemble_into_one_tree() {
        let tracer = Arc::new(Tracer::new(4096, 1, Duration::ZERO));
        let wire_id = (1u64 << 63) | 42; // peer-assigned (high-bit) id
        let h = tracer.begin_with_id(wire_id);
        assert_eq!(h.trace_id(), Some(wire_id));
        h.record_complete(SpanKind::WireSend, ROOT_SPAN, now_ns(), 10, 1, 0);
        drop(h.span(SpanKind::Process, ROOT_SPAN));
        drop(h);
        // The subscriber's ack arrives after the trace finalized: a
        // foreign event with the same trace id joins the same tree.
        let fid = tracer.foreign_span_id();
        assert!(fid & 0x8000_0000 != 0, "foreign ids use the high range");
        tracer.push_foreign(&TraceEvent {
            trace_id: wire_id,
            span_id: fid,
            parent_id: ROOT_SPAN,
            kind: SpanKind::WireAck,
            thread: thread_tag(),
            start_ns: now_ns(),
            dur_ns: 7,
            arg_a: 3,
            arg_b: 0,
        });
        let snap = tracer.snapshot();
        let tree = snap.trace(wire_id).expect("adopted trace retained");
        assert!(tree.root().is_some());
        let kinds: Vec<SpanKind> = tree.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&SpanKind::WireSend));
        assert!(kinds.contains(&SpanKind::WireAck));
        let rendered = tree.render();
        assert!(rendered.contains("wire_send") && rendered.contains("wire_ack"));
    }

    #[test]
    fn inert_handles_and_guards_do_nothing() {
        let h = TraceHandle::none();
        assert!(!h.is_active());
        assert_eq!(h.trace_id(), None);
        let g = h.span(SpanKind::Process, ROOT_SPAN);
        assert!(!g.is_active());
        assert_eq!(g.id(), ROOT_SPAN);
        assert_eq!(
            h.record_complete(SpanKind::QueueWait, ROOT_SPAN, 0, 0, 0, 0),
            ROOT_SPAN
        );
        g.child_complete(SpanKind::RestTest, 0, 0, 0, 0);
        assert_eq!(format!("{h:?}"), "TraceHandle(-)");
    }

    #[test]
    fn chrome_trace_renders_and_validates() {
        let events = vec![
            ev(1, 0, NO_PARENT, SpanKind::Token),
            ev(1, 1, 0, SpanKind::QueueWait),
            ev(1, 2, 0, SpanKind::SigProbe),
        ];
        let json = render_chrome_trace(&events);
        assert_eq!(validate_chrome_trace(&json), Ok(3));
        // The name-collecting variant reports sorted, deduped span names.
        let (n, names) = validate_chrome_trace_names(&json).unwrap();
        assert_eq!(n, 3);
        assert_eq!(names, vec!["queue_wait", "sig_probe", "token"]);
        // Empty export is still valid.
        assert_eq!(validate_chrome_trace(&render_chrome_trace(&[])), Ok(0));
        // Structural failures are detected.
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"name\":1}]}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\"}]}").is_err()
        );
    }

    #[test]
    fn json_parser_handles_strings_numbers_nesting() {
        let ok = r#"{"traceEvents":[],"meta":{"a":[1,-2.5,3e2,true,false,null,"A\n✓"]}}"#;
        assert_eq!(validate_chrome_trace(ok), Ok(0));
        assert!(validate_chrome_trace(r#"{"traceEvents":[]} trailing"#).is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":["#).is_err());
    }

    #[test]
    fn human_ns_formats() {
        assert_eq!(human_ns(999), "999ns");
        assert_eq!(human_ns(1_500), "1.50µs");
        assert_eq!(human_ns(2_500_000), "2.50ms");
        assert_eq!(human_ns(3_000_000_000), "3.00s");
    }
}
