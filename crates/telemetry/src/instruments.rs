//! Lock-free instruments: striped [`Counter`], [`Gauge`], and a
//! log2-bucketed [`Histogram`].
//!
//! All three share one layout discipline: per-thread *stripes*, each padded
//! to its own cache line, written with `Ordering::Relaxed`. Increments from
//! different driver threads land on different lines, so the hot path is a
//! single uncontended atomic add. Reads sum the stripes — they see every
//! write that happened-before the read via the usual synchronization points
//! (thread join, channel receive), which is exactly what the tests and the
//! `show stats` surface need. Totals are *exact* once writers have joined;
//! mid-flight reads are monotone approximations.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of stripes. Enough to spread a few dozen driver threads; small
/// enough that summing on read is trivial.
const STRIPES: usize = 16;

/// One cache line per stripe so concurrent bumps never false-share.
#[repr(align(64))]
#[derive(Default)]
struct StripeU64(AtomicU64);

#[repr(align(64))]
#[derive(Default)]
struct StripeI64(AtomicI64);

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

#[inline]
fn stripe_id() -> usize {
    STRIPE.with(|s| *s)
}

/// Monotonically increasing event count, striped across cache lines.
///
/// This is the counter formerly at `tman_common::stats::Counter`; it moved
/// here so every crate (including storage, below `tman-common` users) can
/// report through one kit. `tman-common` re-exports it, so existing
/// `tman_common::stats::Counter` imports keep working.
#[derive(Default)]
pub struct Counter {
    stripes: [StripeU64; STRIPES],
}

impl Counter {
    /// Fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_id()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum across stripes. Exact once writers have joined.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset to zero, returning the previous value (tests / bench warm-up).
    pub fn reset(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.swap(0, Ordering::Relaxed))
            .sum()
    }
}

impl Clone for Counter {
    /// Cloning snapshots the current value into stripe 0 of the copy.
    fn clone(&self) -> Counter {
        let c = Counter::new();
        c.stripes[0].0.store(self.get(), Ordering::Relaxed);
        c
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A signed up/down quantity (e.g. queue depth), striped like [`Counter`].
///
/// Each thread's increments and decrements land on its own stripe; the
/// value is the sum of all stripes, so an `inc` on one thread paired with a
/// `dec` on another still nets to zero.
#[derive(Default)]
pub struct Gauge {
    stripes: [StripeI64; STRIPES],
}

impl Gauge {
    /// Fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Add a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.stripes[stripe_id()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Sum across stripes.
    pub fn get(&self) -> i64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset to zero.
    pub fn reset(&self) {
        for s in &self.stripes {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Number of log2 buckets: bucket `i` holds values whose bit length is `i`,
/// i.e. the range `[2^(i-1), 2^i - 1]` (bucket 0 holds the value 0). 64
/// buckets cover the full `u64` range — at nanosecond resolution that is
/// ~584 years, so nothing ever clips.
const BUCKETS: usize = 64;

/// Per-stripe bucket array, padded so stripes never share a line. An
/// `[AtomicU64; 64]` is 8 cache lines; alignment keeps the *boundaries*
/// between stripes off shared lines.
#[repr(align(64))]
struct BucketStripe([AtomicU64; BUCKETS]);

impl Default for BucketStripe {
    fn default() -> BucketStripe {
        BucketStripe(std::array::from_fn(|_| AtomicU64::new(0)))
    }
}

/// Log2-bucketed distribution of `u64` samples (typically nanoseconds).
///
/// `record` is two relaxed adds on the caller's stripe plus a relaxed
/// `fetch_max` for the running maximum. `summary` folds the stripes and
/// reports count/sum/max and p50/p95/p99, where a quantile is the upper
/// bound of the cumulative bucket containing it — i.e. quantiles are exact
/// to within a factor of 2, which is the right fidelity for "did drain time
/// stay bounded" questions; count and sum are exact.
#[derive(Default)]
pub struct Histogram {
    buckets: [BucketStripe; STRIPES],
    sum: Counter,
    max: AtomicU64,
}

/// Point-in-time digest of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Samples recorded. Exact.
    pub count: u64,
    /// Sum of all samples. Exact.
    pub sum: u64,
    /// Largest sample seen. Exact.
    pub max: u64,
    /// Median (upper bound of its log2 bucket).
    pub p50: u64,
    /// 95th percentile (upper bound of its log2 bucket).
    pub p95: u64,
    /// 99th percentile (upper bound of its log2 bucket).
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[inline]
fn bucket_of(value: u64) -> usize {
    // Bit length: 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
    // Bit length 64 (values >= 2^63) clamps into the top bucket.
    ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket, used as the quantile estimate.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[stripe_id()].0[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.add(value);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        let mut total = 0u64;
        for stripe in &self.buckets {
            for b in &stripe.0 {
                total += b.load(Ordering::Relaxed);
            }
        }
        total
    }

    /// Fold stripes into a digest.
    pub fn summary(&self) -> HistogramSummary {
        let mut merged = [0u64; BUCKETS];
        for stripe in &self.buckets {
            for (i, b) in stripe.0.iter().enumerate() {
                merged[i] += b.load(Ordering::Relaxed);
            }
        }
        let count: u64 = merged.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-th sample, 1-based, clamped into range.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in merged.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_upper(i);
                }
            }
            bucket_upper(BUCKETS - 1)
        };
        HistogramSummary {
            count,
            sum: self.sum.get(),
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }

    /// Reset all state to empty.
    pub fn reset(&self) {
        for stripe in &self.buckets {
            for b in &stripe.0 {
                b.store(0, Ordering::Relaxed);
            }
        }
        self.sum.reset();
        self.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        write!(
            f,
            "Histogram(count={} sum={} p50={} p95={} p99={} max={})",
            s.count, s.sum, s.p50, s.p95, s.p99, s.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_bump_add_get_reset() {
        let c = Counter::new();
        c.bump();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.reset(), 42);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_clone_snapshots_value() {
        let c = Counter::new();
        c.add(7);
        let d = c.clone();
        c.add(1);
        assert_eq!(d.get(), 7);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn gauge_nets_across_threads() {
        let g = Arc::new(Gauge::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    if t % 2 == 0 {
                        g.inc();
                    } else {
                        g.dec();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_of(1u64 << 62), 63);
    }

    #[test]
    fn histogram_quantiles_within_factor_of_two() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // p50 sample is 500 -> bucket 9 (256..511), upper bound 511.
        assert_eq!(s.p50, 511);
        // p95 sample is 950 -> bucket 10 (512..1023), upper bound 1023.
        assert_eq!(s.p95, 1023);
        assert_eq!(s.p99, 1023);
    }

    #[test]
    fn histogram_empty_summary_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        assert_eq!(h.summary().mean(), 0);
    }

    /// Satellite requirement: N writer threads, totals exact after join.
    #[test]
    fn histogram_striped_totals_exact_after_join() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread samples over many buckets.
                    h.record(t * PER_THREAD + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = h.summary();
        let n = THREADS * PER_THREAD;
        assert_eq!(s.count, n);
        assert_eq!(s.sum, n * (n - 1) / 2);
        assert_eq!(s.max, n - 1);
        assert!(
            s.p50 >= s.count / 4,
            "median should be in the upper buckets"
        );
    }
}
