//! Named, optionally labeled instruments and the cheap handles that
//! subsystems record through.
//!
//! The [`Registry`] is consulted only at *setup* time: a subsystem resolves
//! each instrument once into a [`CounterHandle`] / [`GaugeHandle`] /
//! [`HistogramHandle`] and records through that handle forever after — no
//! name lookup, no lock, no allocation per event. Handles are `Option`s
//! around `Arc`s: a registry built with [`Registry::disabled`] hands out
//! `None` handles whose recording methods are a single predictable branch.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::time::Instant;

use crate::instruments::{Counter, Gauge, Histogram};
use crate::render::{MetricSample, SampleValue};

/// Owned label set: `(key, value)` pairs, sorted for stable identity.
pub type LabelSet = Vec<(String, String)>;

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

/// One registered instrument.
#[derive(Clone)]
pub enum Instrument {
    /// Monotonic counter.
    Counter(Arc<Counter>),
    /// Up/down gauge.
    Gauge(Arc<Gauge>),
    /// Log2 latency/size histogram.
    Histogram(Arc<Histogram>),
    /// Computed counter: exposition invokes the closure for a live value.
    /// For monotonic quantities a subsystem already tracks internally
    /// (e.g. the trace ring's exact overwrite count), where mirroring into
    /// a second instrument would be a shadow copy that can lag.
    CounterFn(Arc<dyn Fn() -> u64 + Send + Sync>),
}

/// Process-wide set of named instruments keyed by `(name, labels)`.
///
/// Two identities with the same name but different labels are distinct
/// series of one family (Prometheus-style). Lookups get-or-create, so any
/// subsystem can resolve `("tman_probes_total", org="mem_index")` without
/// coordinating about who creates it first.
pub struct Registry {
    enabled: bool,
    map: RwLock<BTreeMap<(String, LabelSet), Instrument>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// A live registry: handles record for real.
    pub fn new() -> Registry {
        Registry {
            enabled: true,
            map: RwLock::new(BTreeMap::new()),
        }
    }

    /// A disabled registry: every handle it hands out is a no-op and
    /// [`Registry::samples`] is always empty.
    pub fn disabled() -> Registry {
        Registry {
            enabled: false,
            map: RwLock::new(BTreeMap::new()),
        }
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Option<Instrument> {
        if !self.enabled {
            return None;
        }
        let key = (name.to_string(), label_set(labels));
        if let Some(existing) = self.map.read().unwrap().get(&key) {
            return Some(existing.clone());
        }
        let mut map = self.map.write().unwrap();
        Some(map.entry(key).or_insert_with(make).clone())
    }

    /// Resolve (creating if absent) a counter series.
    ///
    /// If the identity already exists as a different instrument type, the
    /// returned handle is a no-op — a registration bug should not panic a
    /// driver thread.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> CounterHandle {
        match self.get_or_insert(name, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Some(Instrument::Counter(c)) => CounterHandle(Some(c)),
            _ => CounterHandle(None),
        }
    }

    /// Resolve (creating if absent) a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        match self.get_or_insert(name, labels, || Instrument::Gauge(Arc::new(Gauge::new()))) {
            Some(Instrument::Gauge(g)) => GaugeHandle(Some(g)),
            _ => GaugeHandle(None),
        }
    }

    /// Resolve (creating if absent) a histogram series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        match self.get_or_insert(name, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new()))
        }) {
            Some(Instrument::Histogram(h)) => HistogramHandle(Some(h)),
            _ => HistogramHandle(None),
        }
    }

    /// Register a counter that already lives inside a subsystem's stats
    /// struct (e.g. the trigger cache's hit counter), so exposition reads
    /// the live value without a second instrument on the hot path.
    /// Replaces any previous instrument at the same identity.
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], counter: Arc<Counter>) {
        if !self.enabled {
            return;
        }
        let key = (name.to_string(), label_set(labels));
        self.map
            .write()
            .unwrap()
            .insert(key, Instrument::Counter(counter));
    }

    /// Register a histogram that already lives inside a subsystem's stats
    /// struct (e.g. the WAL's group-commit latency), so exposition reads
    /// the live buckets without a second instrument on the hot path.
    /// Replaces any previous instrument at the same identity.
    pub fn register_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        histogram: Arc<Histogram>,
    ) {
        if !self.enabled {
            return;
        }
        let key = (name.to_string(), label_set(labels));
        self.map
            .write()
            .unwrap()
            .insert(key, Instrument::Histogram(histogram));
    }

    /// Register a computed counter: every exposition pass
    /// ([`samples`](Self::samples) and the renderers built on it) calls
    /// `f()` for the live value. Replaces any previous instrument at the
    /// same identity. The closure must be cheap and non-blocking — it runs
    /// with the registry's read lock held.
    pub fn register_counter_fn(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        if !self.enabled {
            return;
        }
        let key = (name.to_string(), label_set(labels));
        self.map
            .write()
            .unwrap()
            .insert(key, Instrument::CounterFn(Arc::new(f)));
    }

    /// Register an existing shared gauge (see [`Registry::register_counter`]).
    pub fn register_gauge(&self, name: &str, labels: &[(&str, &str)], gauge: Arc<Gauge>) {
        if !self.enabled {
            return;
        }
        let key = (name.to_string(), label_set(labels));
        self.map
            .write()
            .unwrap()
            .insert(key, Instrument::Gauge(gauge));
    }

    /// Snapshot every series, sorted by `(name, labels)`.
    pub fn samples(&self) -> Vec<MetricSample> {
        let map = self.map.read().unwrap();
        map.iter()
            .map(|((name, labels), inst)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                value: match inst {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SampleValue::Histogram(h.summary()),
                    Instrument::CounterFn(f) => SampleValue::Counter(f()),
                },
            })
            .collect()
    }

    /// Prometheus-style text exposition of every series.
    pub fn render_text(&self) -> String {
        crate::render::render_text(&self.samples())
    }

    /// JSON object (`{"name{labels}": value-or-summary, ...}`) of every
    /// series; hand-rolled, no serde dependency.
    pub fn render_json(&self) -> String {
        crate::render::render_json(&self.samples())
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.map.read().unwrap().len();
        write!(f, "Registry(enabled={}, series={})", self.enabled, n)
    }
}

/// Cheap recording handle for a counter series. `None` (from a disabled
/// registry) makes every method a single branch.
#[derive(Clone, Default)]
pub struct CounterHandle(pub(crate) Option<Arc<Counter>>);

impl CounterHandle {
    /// A handle that records nowhere.
    pub fn noop() -> CounterHandle {
        CounterHandle(None)
    }

    /// Add one.
    #[inline]
    pub fn bump(&self) {
        if let Some(c) = &self.0 {
            c.bump();
        }
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.get())
    }

    /// Whether this handle records for real.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Cheap recording handle for a gauge series.
#[derive(Clone, Default)]
pub struct GaugeHandle(pub(crate) Option<Arc<Gauge>>);

impl GaugeHandle {
    /// A handle that records nowhere.
    pub fn noop() -> GaugeHandle {
        GaugeHandle(None)
    }

    /// Add a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.add(delta);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.get())
    }

    /// Whether this handle records for real.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Cheap recording handle for a histogram series.
#[derive(Clone, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<Histogram>>);

impl HistogramHandle {
    /// A handle that records nowhere.
    pub fn noop() -> HistogramHandle {
        HistogramHandle(None)
    }

    /// Record one sample (nanoseconds, bytes, fanout, ...).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Start a wall-clock timer whose elapsed nanoseconds are recorded when
    /// the guard drops. A no-op handle never reads the clock.
    #[inline]
    pub fn start(&self) -> Timer {
        Timer {
            hist: self.0.clone(),
            started: if self.0.is_some() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Digest of this series (empty for a no-op handle).
    pub fn summary(&self) -> crate::instruments::HistogramSummary {
        self.0
            .as_ref()
            .map_or_else(Default::default, |h| h.summary())
    }

    /// Whether this handle records for real.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Drop guard from [`HistogramHandle::start`]: records elapsed nanoseconds
/// into the histogram on drop.
pub struct Timer {
    hist: Option<Arc<Histogram>>,
    started: Option<Instant>,
}

impl Timer {
    /// Record now instead of at scope end.
    pub fn stop(self) {}
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let (Some(h), Some(t0)) = (&self.hist, self.started) {
            h.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_series() {
        let r = Registry::new();
        let a = r.counter("tokens_total", &[]);
        let b = r.counter("tokens_total", &[]);
        a.bump();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn labels_distinguish_series_regardless_of_order() {
        let r = Registry::new();
        let a = r.counter("probes", &[("org", "mem_list"), ("sig", "1")]);
        let b = r.counter("probes", &[("sig", "1"), ("org", "mem_list")]);
        let c = r.counter("probes", &[("org", "mem_index"), ("sig", "1")]);
        a.bump();
        assert_eq!(b.get(), 1, "label order must not split a series");
        assert_eq!(c.get(), 0);
        assert_eq!(r.samples().len(), 2);
    }

    #[test]
    fn disabled_registry_hands_out_noops() {
        let r = Registry::disabled();
        let c = r.counter("x", &[]);
        let g = r.gauge("y", &[]);
        let h = r.histogram("z", &[]);
        c.bump();
        g.inc();
        h.record(5);
        {
            let _t = h.start();
        }
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.summary().count, 0);
        assert!(r.samples().is_empty());
        assert!(r.render_text().is_empty());
    }

    #[test]
    fn type_conflict_yields_noop_not_panic() {
        let r = Registry::new();
        let _c = r.counter("same_name", &[]);
        let g = r.gauge("same_name", &[]);
        g.inc();
        assert!(!g.is_enabled());
    }

    #[test]
    fn registered_shared_counter_is_read_live() {
        let r = Registry::new();
        let shared = Arc::new(Counter::new());
        r.register_counter("cache_hits_total", &[], shared.clone());
        shared.add(9);
        let samples = r.samples();
        assert_eq!(samples.len(), 1);
        assert!(matches!(samples[0].value, SampleValue::Counter(9)));
    }

    #[test]
    fn computed_counters_are_read_live() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let r = Registry::new();
        let v = Arc::new(AtomicU64::new(0));
        let src = v.clone();
        r.register_counter_fn("computed_total", &[], move || src.load(Ordering::Relaxed));
        v.store(7, Ordering::Relaxed);
        let samples = r.samples();
        assert_eq!(samples.len(), 1);
        assert!(matches!(samples[0].value, SampleValue::Counter(7)));
        v.store(9, Ordering::Relaxed);
        assert!(r.render_text().contains("computed_total"));
        let samples = r.samples();
        assert!(matches!(samples[0].value, SampleValue::Counter(9)));
        // A disabled registry ignores the registration entirely.
        let d = Registry::disabled();
        d.register_counter_fn("computed_total", &[], || 1);
        assert!(d.samples().is_empty());
    }

    #[test]
    fn timer_records_elapsed() {
        let r = Registry::new();
        let h = r.histogram("lat_ns", &[]);
        {
            let _t = h.start();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 1_000_000, "slept 1ms, recorded {}ns", s.sum);
    }
}
