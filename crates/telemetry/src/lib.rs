//! `tman-telemetry` — the engine-wide observability kit.
//!
//! The paper's scalability claims are arguments about *measured work*:
//! probe counts, cache hits, page I/O, and bounded `TmanTest()` drain time
//! (§5–§7). This crate supplies the instruments every subsystem reports
//! through:
//!
//! * [`Counter`] — monotonically increasing, thread-striped so hot-path
//!   increments never share a cache line across driver threads;
//! * [`Gauge`] — a signed up/down quantity (queue depth), striped the same
//!   way;
//! * [`Histogram`] — log2-bucketed latency/size distribution (record in
//!   nanoseconds; report count, sum, p50/p95/p99, max);
//! * [`Registry`] — a process-wide set of *named, optionally labeled*
//!   instruments (labels: constant-set organization, task type, action
//!   kind, ...) with two read surfaces: typed [`Registry::samples`] and a
//!   Prometheus-style text exposition [`Registry::render_text`].
//!
//! ## Overhead design
//!
//! Everything on a record path is a relaxed atomic add on a per-thread
//! stripe — the same discipline as the original `tman_common::stats`
//! counters (which now live here). Subsystems hold pre-resolved
//! [`CounterHandle`]/[`GaugeHandle`]/[`HistogramHandle`]s, so no name
//! lookup or lock is ever taken per event. A registry created with
//! [`disabled()`] hands out empty handles whose record calls are a single
//! predictable branch — timers don't even read the clock — so a baseline
//! run pays essentially nothing.
//!
//! This crate is dependency-free (std only) so every other crate in the
//! workspace can use it.

pub mod http;
pub mod instruments;
pub mod registry;
pub mod render;
pub mod trace;

pub use http::{HttpHandler, HttpResponse, HttpServer};
pub use instruments::{Counter, Gauge, Histogram, HistogramSummary};
pub use registry::{CounterHandle, GaugeHandle, HistogramHandle, Instrument, Registry, Timer};
pub use render::{json_escape, MetricSample, SampleValue};
pub use trace::{
    unix_now_ns, SpanGuard, SpanKind, TraceEvent, TraceHandle, TraceRing, TraceSnapshot, TraceTree,
    Tracer, TracerStats,
};

/// A registry whose handles are no-ops: recording calls reduce to one
/// branch, and timers never read the clock. Use for baseline/ablation runs
/// where even relaxed-atomic traffic must not appear in a profile.
pub fn disabled() -> Registry {
    Registry::disabled()
}
