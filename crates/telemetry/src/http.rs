//! Dependency-free HTTP/1.0 exposition responder.
//!
//! Standard scrapers (Prometheus, curl, load balancer health checks)
//! speak HTTP; this module gives the engine an exposition endpoint
//! without pulling an async runtime or an HTTP crate into the std-only
//! telemetry kit. It follows the wire server's idiom: one thread, a
//! non-blocking `TcpListener`, per-connection read/write buffers, and a
//! short park when idle. The protocol surface is deliberately tiny —
//! `GET` only, one request per connection, `Connection: close` — which
//! is all an exposition endpoint needs and keeps the parser to a
//! request line.
//!
//! Routing is the caller's: [`HttpServer::start`] takes a handler
//! mapping a path to an optional [`HttpResponse`] (`None` → 404), so
//! this module knows nothing about metrics, health, or traces.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request (request line + headers) accepted before answering
/// 400 — an exposition GET fits in a fraction of this.
const MAX_REQUEST: usize = 8 * 1024;

/// Idle park between poll passes when no connection made progress.
/// Scrapes are seconds apart; half a millisecond of added latency is
/// invisible and keeps the idle thread cold.
const IDLE_PARK: Duration = Duration::from_micros(500);

/// One response from a route handler.
pub struct HttpResponse {
    /// Status code (200, 404, 503, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// 200 with `text/plain; version=0.0.4` (the Prometheus text
    /// exposition content type).
    pub fn metrics_text(body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into(),
        }
    }

    /// 200 with `application/json`.
    pub fn json(body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// Arbitrary status with a plain-text body.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }
}

/// Route handler: path (query string stripped) → response, `None` → 404.
pub type HttpHandler = Arc<dyn Fn(&str) -> Option<HttpResponse> + Send + Sync>;

/// A running exposition endpoint. Dropping (or [`stop`](Self::stop)ping)
/// it joins the serving thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9100"`, port 0 for ephemeral) and
    /// serve `handler` on a background thread until stopped.
    pub fn start(addr: &str, handler: HttpHandler) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("tman-http".into())
                .spawn(move || run_loop(listener, handler, stop))?
        };
        Ok(HttpServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop serving and join the thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

struct HttpConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    responded: bool,
    dead: bool,
}

fn run_loop(listener: TcpListener, handler: HttpHandler, stop: Arc<AtomicBool>) {
    let mut conns: Vec<HttpConn> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let mut busy = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    conns.push(HttpConn {
                        stream,
                        rbuf: Vec::with_capacity(256),
                        wbuf: Vec::new(),
                        responded: false,
                        dead: false,
                    });
                    busy = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        for conn in conns.iter_mut() {
            if !conn.responded {
                busy |= read_request(conn);
                if conn.dead {
                    continue;
                }
                // The size guard comes first: a request head that outgrew
                // the cap is rejected even if its terminator did arrive.
                if conn.rbuf.len() > MAX_REQUEST {
                    conn.wbuf = render(HttpResponse::text(400, "request too large\n"));
                    conn.responded = true;
                    busy = true;
                } else if let Some(req_end) = headers_end(&conn.rbuf) {
                    conn.wbuf = respond(&conn.rbuf[..req_end], &handler);
                    conn.responded = true;
                    busy = true;
                }
            }
            busy |= flush(conn);
            if conn.responded && conn.wbuf.is_empty() {
                // One request per connection: close once the response is
                // fully written.
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                conn.dead = true;
            }
        }
        conns.retain(|c| !c.dead);
        if !busy {
            std::thread::park_timeout(IDLE_PARK);
        }
    }
}

/// Pull whatever is readable into the connection buffer. Returns whether
/// any bytes arrived.
fn read_request(conn: &mut HttpConn) -> bool {
    let mut progressed = false;
    let mut chunk = [0u8; 2048];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.dead = true;
                return progressed;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                progressed = true;
                if conn.rbuf.len() > MAX_REQUEST {
                    return progressed;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return progressed,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return progressed;
            }
        }
    }
}

/// Offset just past the request head (`\r\n\r\n` or bare `\n\n`), if
/// fully buffered. Request bodies are ignored — GET has none.
fn headers_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Parse the request line and produce the wire bytes of the response.
fn respond(head: &[u8], handler: &HttpHandler) -> Vec<u8> {
    let line = head.split(|&b| b == b'\n').next().unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let resp = if method != "GET" {
        HttpResponse::text(405, "only GET is supported\n")
    } else {
        let path = target.split('?').next().unwrap_or("");
        match handler(path) {
            Some(r) => r,
            None => HttpResponse::text(404, "not found\n"),
        }
    };
    render(resp)
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

fn render(resp: HttpResponse) -> Vec<u8> {
    let mut out = Vec::with_capacity(resp.body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            resp.status,
            status_reason(resp.status),
            resp.content_type,
            resp.body.len(),
        )
        .as_bytes(),
    );
    out.extend_from_slice(&resp.body);
    out
}

/// Write as much of the pending response as the socket accepts. Returns
/// whether any bytes moved.
fn flush(conn: &mut HttpConn) -> bool {
    let mut written = 0usize;
    while written < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[written..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    conn.wbuf.drain(..written);
    written > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> String {
        request(addr, &format!("GET {target} HTTP/1.0\r\n\r\n"))
    }

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn serve() -> HttpServer {
        HttpServer::start(
            "127.0.0.1:0",
            Arc::new(|path: &str| match path {
                "/metrics" => Some(HttpResponse::metrics_text("tman_up 1\n")),
                "/healthz" => Some(HttpResponse::json("{\"status\":\"ok\"}")),
                _ => None,
            }),
        )
        .unwrap()
    }

    #[test]
    fn serves_routed_paths_with_content_length() {
        let server = serve();
        let got = get(server.local_addr(), "/metrics");
        assert!(got.starts_with("HTTP/1.0 200 OK\r\n"), "{got}");
        assert!(got.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(got.contains("Content-Length: 10"));
        assert!(got.ends_with("tman_up 1\n"));
        let got = get(server.local_addr(), "/healthz?verbose=1");
        assert!(got.contains("application/json"), "query string stripped");
        assert!(got.ends_with("{\"status\":\"ok\"}"));
    }

    #[test]
    fn unknown_paths_404_and_non_get_405() {
        let server = serve();
        assert!(get(server.local_addr(), "/nope").starts_with("HTTP/1.0 404"));
        let got = request(
            server.local_addr(),
            "POST /metrics HTTP/1.0\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(got.starts_with("HTTP/1.0 405"), "{got}");
    }

    #[test]
    fn oversized_requests_are_rejected_not_buffered_forever() {
        let server = serve();
        let huge = format!(
            "GET /metrics HTTP/1.0\r\nX-Junk: {}\r\n\r\n",
            "j".repeat(MAX_REQUEST)
        );
        let got = request(server.local_addr(), &huge);
        assert!(got.starts_with("HTTP/1.0 400"), "{got}");
    }

    #[test]
    fn many_sequential_scrapes_on_one_server() {
        let server = serve();
        for _ in 0..20 {
            assert!(get(server.local_addr(), "/metrics").contains("tman_up 1"));
        }
    }
}
