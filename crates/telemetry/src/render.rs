//! Read surfaces: typed samples, Prometheus-style text exposition, and a
//! hand-rolled JSON encoding (the workspace carries no serde).

use crate::instruments::HistogramSummary;
use crate::registry::LabelSet;

/// One snapshotted series.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Family name, e.g. `tman_index_probes_total`.
    pub name: String,
    /// Sorted `(key, value)` label pairs; empty for unlabeled series.
    pub labels: LabelSet,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// Snapshot value of one series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram digest.
    Histogram(HistogramSummary),
}

impl SampleValue {
    fn type_name(&self) -> &'static str {
        match self {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "summary",
        }
    }
}

/// Escape a label value for the text exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render `{k="v",...}`, with room for extra pairs (quantile labels);
/// empty string when there are no labels at all.
fn label_block(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{}=\"{}\"", k, escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Prometheus-style text exposition. Samples must be sorted by name (the
/// registry's BTreeMap guarantees it) so each family gets one `# TYPE`
/// line. Histograms render as summaries: `_count`, `_sum`, quantile
/// series, and a non-standard `_max` gauge line.
pub fn render_text(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for s in samples {
        if last_family != Some(s.name.as_str()) {
            out.push_str(&format!("# TYPE {} {}\n", s.name, s.value.type_name()));
            last_family = Some(s.name.as_str());
        }
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    v
                ));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    v
                ));
            }
            SampleValue::Histogram(h) => {
                let plain = label_block(&s.labels, None);
                out.push_str(&format!("{}_count{} {}\n", s.name, plain, h.count));
                out.push_str(&format!("{}_sum{} {}\n", s.name, plain, h.sum));
                for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        label_block(&s.labels, Some(("quantile", q))),
                        v
                    ));
                }
                out.push_str(&format!("{}_max{} {}\n", s.name, plain, h.max));
            }
        }
    }
    out
}

/// Escape a string for JSON output.
pub fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON object mapping each series key (`name` or `name{k=v,...}`) to its
/// value — a bare number for counters/gauges, an object for histograms.
pub fn render_json(samples: &[MetricSample]) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(samples.len());
    for s in samples {
        let key = if s.labels.is_empty() {
            s.name.clone()
        } else {
            let labels: Vec<String> = s
                .labels
                .iter()
                .map(|(k, v)| format!("{}={}", k, v))
                .collect();
            format!("{}{{{}}}", s.name, labels.join(","))
        };
        let value = match &s.value {
            SampleValue::Counter(v) => v.to_string(),
            SampleValue::Gauge(v) => v.to_string(),
            SampleValue::Histogram(h) => format!(
                "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                h.count, h.sum, h.p50, h.p95, h.p99, h.max
            ),
        };
        parts.push(format!("\"{}\":{}", json_escape(&key), value));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("tman_tokens_total", &[]).add(5);
        r.counter("tman_index_probes_total", &[("org", "mem_list")])
            .add(3);
        r.counter("tman_index_probes_total", &[("org", "mem_index")])
            .add(7);
        r.gauge("tman_queue_depth", &[]).add(2);
        let h = r.histogram("tman_test_ns", &[]);
        h.record(100);
        h.record(900);
        r
    }

    #[test]
    fn text_exposition_shape() {
        let text = sample_registry().render_text();
        assert!(text.contains("# TYPE tman_tokens_total counter\n"));
        assert!(text.contains("tman_tokens_total 5\n"));
        assert!(text.contains("tman_index_probes_total{org=\"mem_index\"} 7\n"));
        assert!(text.contains("tman_index_probes_total{org=\"mem_list\"} 3\n"));
        assert!(text.contains("# TYPE tman_queue_depth gauge\n"));
        assert!(text.contains("tman_queue_depth 2\n"));
        assert!(text.contains("# TYPE tman_test_ns summary\n"));
        assert!(text.contains("tman_test_ns_count 2\n"));
        assert!(text.contains("tman_test_ns_sum 1000\n"));
        assert!(text.contains("tman_test_ns{quantile=\"0.5\"}"));
        assert!(text.contains("tman_test_ns_max 900\n"));
        // Exactly one TYPE line per family even with multiple series.
        assert_eq!(text.matches("# TYPE tman_index_probes_total").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("c", &[("k", "a\"b\\c\nd")]).bump();
        let text = r.render_text();
        assert!(text.contains("c{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn json_is_wellformed_and_complete() {
        let json = sample_registry().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"tman_tokens_total\":5"));
        assert!(json.contains("\"tman_index_probes_total{org=mem_index}\":7"));
        assert!(json.contains("\"tman_queue_depth\":2"));
        assert!(json.contains("\"tman_test_ns\":{\"count\":2,\"sum\":1000"));
    }

    #[test]
    fn empty_registry_renders_empty() {
        let r = Registry::new();
        assert_eq!(r.render_text(), "");
        assert_eq!(r.render_json(), "{}");
    }
}
