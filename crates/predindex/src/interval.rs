//! Dynamic interval index for range-predicate signatures.
//!
//! The mem-index organization of a *range* signature (`lo <[=] attr <[=]
//! hi`) needs stabbing queries: given a token's attribute value, find every
//! expression whose interval contains it. \[Hans96b\] uses the interval
//! skip list; we implement the same interface with an augmented randomized
//! BST (treap ordered by interval low endpoint, subtree-max on the high
//! endpoint), which has the same O(log n + answer) expected stabbing cost.
//! The choice is called out in DESIGN.md.

use std::cmp::Ordering;
use tman_common::Value;

/// An interval endpoint: a bound value plus inclusivity, or unbounded.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// No bound on this side.
    Open,
    /// Bound at `value`; `inclusive` controls `<=` vs `<`.
    At {
        /// The bound value.
        value: Value,
        /// Whether the endpoint itself is inside the interval.
        inclusive: bool,
    },
}

impl Bound {
    fn lo_key(&self) -> (Option<&Value>, bool) {
        match self {
            Bound::Open => (None, true),
            Bound::At { value, inclusive } => (Some(value), *inclusive),
        }
    }

    /// Does a lower bound admit `v`?
    fn lo_admits(&self, v: &Value) -> bool {
        match self {
            Bound::Open => true,
            Bound::At { value, inclusive } => match v.total_cmp(value) {
                Ordering::Greater => true,
                Ordering::Equal => *inclusive,
                Ordering::Less => false,
            },
        }
    }

    /// Does an upper bound admit `v`?
    fn hi_admits(&self, v: &Value) -> bool {
        match self {
            Bound::Open => true,
            Bound::At { value, inclusive } => match v.total_cmp(value) {
                Ordering::Less => true,
                Ordering::Equal => *inclusive,
                Ordering::Greater => false,
            },
        }
    }
}

/// Order lower bounds: Open (= -inf) first, then by value; at equal values
/// an inclusive bound starts earlier than an exclusive one.
fn cmp_lo(a: &Bound, b: &Bound) -> Ordering {
    match (a.lo_key(), b.lo_key()) {
        ((None, _), (None, _)) => Ordering::Equal,
        ((None, _), _) => Ordering::Less,
        (_, (None, _)) => Ordering::Greater,
        ((Some(x), xi), (Some(y), yi)) => x.total_cmp(y).then_with(|| yi.cmp(&xi)),
    }
}

struct Node<T> {
    lo: Bound,
    hi: Bound,
    item: T,
    priority: u64,
    /// Max upper bound in this subtree (None = unbounded/open present).
    max_hi: MaxHi,
    left: Option<Box<Node<T>>>,
    right: Option<Box<Node<T>>>,
}

/// Subtree maximum of upper bounds; `Unbounded` dominates everything.
#[derive(Debug, Clone, PartialEq)]
enum MaxHi {
    Unbounded,
    At(Value),
}

impl MaxHi {
    fn of_bound(b: &Bound) -> MaxHi {
        match b {
            Bound::Open => MaxHi::Unbounded,
            Bound::At { value, .. } => MaxHi::At(value.clone()),
        }
    }

    fn merge(a: &MaxHi, b: &MaxHi) -> MaxHi {
        match (a, b) {
            (MaxHi::Unbounded, _) | (_, MaxHi::Unbounded) => MaxHi::Unbounded,
            (MaxHi::At(x), MaxHi::At(y)) => {
                if x.total_cmp(y) == Ordering::Less {
                    MaxHi::At(y.clone())
                } else {
                    MaxHi::At(x.clone())
                }
            }
        }
    }

    /// Could any interval in a subtree with this max still contain `v`?
    /// (Conservative: equality admitted regardless of inclusivity.)
    fn may_contain(&self, v: &Value) -> bool {
        match self {
            MaxHi::Unbounded => true,
            MaxHi::At(x) => v.total_cmp(x) != Ordering::Greater,
        }
    }
}

impl<T> Node<T> {
    fn recompute(&mut self) {
        let mut m = MaxHi::of_bound(&self.hi);
        if let Some(l) = &self.left {
            m = MaxHi::merge(&m, &l.max_hi);
        }
        if let Some(r) = &self.right {
            m = MaxHi::merge(&m, &r.max_hi);
        }
        self.max_hi = m;
    }
}

/// A set of `(interval, item)` pairs supporting stabbing queries.
pub struct IntervalIndex<T> {
    root: Option<Box<Node<T>>>,
    len: usize,
    rng: u64,
}

impl<T> Default for IntervalIndex<T> {
    fn default() -> Self {
        IntervalIndex::new()
    }
}

impl<T> IntervalIndex<T> {
    /// Empty index.
    pub fn new() -> IntervalIndex<T> {
        IntervalIndex {
            root: None,
            len: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn next_priority(&mut self) -> u64 {
        // xorshift64*: deterministic, dependency-free.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Insert an interval.
    pub fn insert(&mut self, lo: Bound, hi: Bound, item: T) {
        let pri = self.next_priority();
        let node = Box::new(Node {
            max_hi: MaxHi::of_bound(&hi),
            lo,
            hi,
            item,
            priority: pri,
            left: None,
            right: None,
        });
        self.root = Some(Self::insert_node(self.root.take(), node));
        self.len += 1;
    }

    fn insert_node(tree: Option<Box<Node<T>>>, node: Box<Node<T>>) -> Box<Node<T>> {
        let Some(mut t) = tree else { return node };
        if node.priority > t.priority {
            // node becomes the root of this subtree: split t around node.lo.
            let (l, r) = Self::split(Some(t), &node.lo);
            let mut n = node;
            n.left = l;
            n.right = r;
            n.recompute();
            return n;
        }
        if cmp_lo(&node.lo, &t.lo) == Ordering::Less {
            t.left = Some(Self::insert_node(t.left.take(), node));
        } else {
            t.right = Some(Self::insert_node(t.right.take(), node));
        }
        t.recompute();
        t
    }

    #[allow(clippy::type_complexity)]
    fn split(
        tree: Option<Box<Node<T>>>,
        at: &Bound,
    ) -> (Option<Box<Node<T>>>, Option<Box<Node<T>>>) {
        let Some(mut t) = tree else {
            return (None, None);
        };
        if cmp_lo(&t.lo, at) == Ordering::Less {
            let (l, r) = Self::split(t.right.take(), at);
            t.right = l;
            t.recompute();
            (Some(t), r)
        } else {
            let (l, r) = Self::split(t.left.take(), at);
            t.left = r;
            t.recompute();
            (l, Some(t))
        }
    }

    /// Remove the first interval matching `pred`. Returns the removed item.
    pub fn remove_where(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let (root, removed) = Self::remove_node(self.root.take(), &mut pred);
        self.root = root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    #[allow(clippy::type_complexity)]
    fn remove_node(
        tree: Option<Box<Node<T>>>,
        pred: &mut impl FnMut(&T) -> bool,
    ) -> (Option<Box<Node<T>>>, Option<T>) {
        let Some(mut t) = tree else {
            return (None, None);
        };
        if pred(&t.item) {
            let merged = Self::merge(t.left.take(), t.right.take());
            return (merged, Some(t.item));
        }
        let (l, removed) = Self::remove_node(t.left.take(), pred);
        t.left = l;
        if removed.is_some() {
            t.recompute();
            return (Some(t), removed);
        }
        let (r, removed) = Self::remove_node(t.right.take(), pred);
        t.right = r;
        t.recompute();
        (Some(t), removed)
    }

    fn merge(l: Option<Box<Node<T>>>, r: Option<Box<Node<T>>>) -> Option<Box<Node<T>>> {
        match (l, r) {
            (None, r) => r,
            (l, None) => l,
            (Some(mut a), Some(mut b)) => {
                if a.priority > b.priority {
                    a.right = Self::merge(a.right.take(), Some(b));
                    a.recompute();
                    Some(a)
                } else {
                    b.left = Self::merge(Some(a), b.left.take());
                    b.recompute();
                    Some(b)
                }
            }
        }
    }

    /// Visit every item whose interval contains `v`.
    pub fn stab(&self, v: &Value, visit: &mut dyn FnMut(&T)) {
        Self::stab_node(&self.root, v, visit)
    }

    fn stab_node(tree: &Option<Box<Node<T>>>, v: &Value, visit: &mut dyn FnMut(&T)) {
        let Some(t) = tree else { return };
        // Prune: nothing in this subtree can reach v.
        if !t.max_hi.may_contain(v) {
            return;
        }
        // Left subtree always has lower lows; recurse unconditionally (its
        // max_hi pruning handles the rest).
        Self::stab_node(&t.left, v, visit);
        if t.lo.lo_admits(v) && t.hi.hi_admits(v) {
            visit(&t.item);
        }
        // Right subtree has lows >= t.lo; only useful if some low <= v,
        // i.e. if t.lo itself doesn't already exceed v... lows in the right
        // subtree can still be <= v even if not equal to t.lo, so gate on
        // whether v is above t.lo at all.
        if t.lo.lo_admits(v)
            || matches!(&t.lo, Bound::At { value, .. } if value.total_cmp(v) != Ordering::Greater)
        {
            Self::stab_node(&t.right, v, visit);
        }
    }

    /// Collect (rather than visit) stabbing results — convenience for tests.
    pub fn stab_collect(&self, v: &Value) -> Vec<&T> {
        let mut refs = Vec::new();
        self.collect_refs(v, &mut refs);
        refs
    }

    fn collect_refs<'a>(&'a self, v: &Value, out: &mut Vec<&'a T>) {
        fn rec<'a, T>(tree: &'a Option<Box<Node<T>>>, v: &Value, out: &mut Vec<&'a T>) {
            let Some(t) = tree else { return };
            if !t.max_hi.may_contain(v) {
                return;
            }
            rec(&t.left, v, out);
            if t.lo.lo_admits(v) && t.hi.hi_admits(v) {
                out.push(&t.item);
            }
            if t.lo.lo_admits(v)
                || matches!(&t.lo, Bound::At { value, .. } if value.total_cmp(v) != Ordering::Greater)
            {
                rec(&t.right, v, out);
            }
        }
        rec(&self.root, v, out)
    }

    /// Visit every stored item (any order).
    pub fn for_each(&self, visit: &mut dyn FnMut(&T)) {
        fn rec<T>(tree: &Option<Box<Node<T>>>, visit: &mut dyn FnMut(&T)) {
            if let Some(t) = tree {
                rec(&t.left, visit);
                visit(&t.item);
                rec(&t.right, visit);
            }
        }
        rec(&self.root, visit)
    }

    /// Approximate heap usage in bytes (for the E3 memory report).
    pub fn memory_bytes(&self) -> usize {
        self.len * (std::mem::size_of::<Node<T>>() + 2 * std::mem::size_of::<Value>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(v: i64, inclusive: bool) -> Bound {
        Bound::At {
            value: Value::Int(v),
            inclusive,
        }
    }

    fn naive_stab(items: &[(Bound, Bound, u32)], v: &Value) -> Vec<u32> {
        let mut out: Vec<u32> = items
            .iter()
            .filter(|(lo, hi, _)| lo.lo_admits(v) && hi.hi_admits(v))
            .map(|(_, _, id)| *id)
            .collect();
        out.sort();
        out
    }

    fn index_stab(ix: &IntervalIndex<u32>, v: &Value) -> Vec<u32> {
        let mut out = Vec::new();
        ix.stab(v, &mut |id| out.push(*id));
        out.sort();
        out
    }

    #[test]
    fn basic_stabbing() {
        let mut ix = IntervalIndex::new();
        ix.insert(at(10, true), at(20, true), 1u32);
        ix.insert(at(15, false), at(30, true), 2);
        ix.insert(Bound::Open, at(12, false), 3);
        ix.insert(at(25, true), Bound::Open, 4);

        assert_eq!(index_stab(&ix, &Value::Int(11)), vec![1, 3]);
        assert_eq!(index_stab(&ix, &Value::Int(15)), vec![1]); // 2 is exclusive at 15
        assert_eq!(index_stab(&ix, &Value::Int(16)), vec![1, 2]);
        assert_eq!(index_stab(&ix, &Value::Int(26)), vec![2, 4]);
        assert_eq!(index_stab(&ix, &Value::Int(1000)), vec![4]);
        assert_eq!(index_stab(&ix, &Value::Int(-50)), vec![3]);
    }

    #[test]
    fn inclusivity_at_endpoints() {
        let mut ix = IntervalIndex::new();
        ix.insert(at(5, true), at(10, false), 1u32);
        assert_eq!(index_stab(&ix, &Value::Int(5)), vec![1]);
        assert_eq!(index_stab(&ix, &Value::Int(10)), Vec::<u32>::new());
        assert_eq!(index_stab(&ix, &Value::Int(9)), vec![1]);
    }

    #[test]
    fn removal() {
        let mut ix = IntervalIndex::new();
        for i in 0..10 {
            ix.insert(at(i, true), at(i + 5, true), i as u32);
        }
        assert_eq!(ix.len(), 10);
        let removed = ix.remove_where(|&id| id == 3);
        assert_eq!(removed, Some(3));
        assert_eq!(ix.len(), 9);
        assert!(!index_stab(&ix, &Value::Int(4)).contains(&3));
        assert!(ix.remove_where(|&id| id == 99).is_none());
    }

    #[test]
    fn randomized_against_naive() {
        let mut seed = 12345u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut ix = IntervalIndex::new();
        let mut model: Vec<(Bound, Bound, u32)> = Vec::new();
        for id in 0..500u32 {
            let a = (next() % 1000) as i64;
            let b = a + (next() % 100) as i64;
            let lo_inc = next() % 2 == 0;
            let hi_inc = next() % 2 == 0;
            let lo = if next() % 10 == 0 {
                Bound::Open
            } else {
                at(a, lo_inc)
            };
            let hi = if next() % 10 == 0 {
                Bound::Open
            } else {
                at(b, hi_inc)
            };
            ix.insert(lo.clone(), hi.clone(), id);
            model.push((lo, hi, id));
        }
        // Random removals.
        for _ in 0..100 {
            let victim = (next() % 500) as u32;
            let in_model = model.iter().position(|(_, _, id)| *id == victim);
            let removed = ix.remove_where(|&id| id == victim);
            match in_model {
                Some(pos) => {
                    assert!(removed.is_some());
                    model.remove(pos);
                }
                None => assert!(removed.is_none()),
            }
        }
        for probe in (0..1100).step_by(7) {
            let v = Value::Int(probe);
            assert_eq!(index_stab(&ix, &v), naive_stab(&model, &v), "probe {probe}");
        }
    }

    #[test]
    fn float_and_cross_type_values() {
        let mut ix = IntervalIndex::new();
        ix.insert(
            Bound::At {
                value: Value::Float(0.5),
                inclusive: true,
            },
            Bound::At {
                value: Value::Float(1.5),
                inclusive: true,
            },
            7u32,
        );
        assert_eq!(index_stab(&ix, &Value::Int(1)), vec![7]);
        assert_eq!(index_stab(&ix, &Value::Float(0.4)), Vec::<u32>::new());
    }
}
