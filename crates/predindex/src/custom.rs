//! Extensible constant-set organizations — §9's third future-work topic:
//! "develop a technique to make the implementation of the main-memory and
//! disk-based structures used to organize the constant sets ... extensible,
//! so they will work effectively with new operators and data types."
//!
//! A [`CustomConstantSet`] implements the same contract as the built-in
//! organizations; [`crate::SignatureRuntime::set_custom_org`] swaps one in
//! (migrating existing entries), after which probing, trigger removal and
//! statistics work unchanged. [`OrderedVecOrg`] is a worked example: a
//! sorted-vector organization for equality signatures that sits between
//! the list and hash strategies (binary search, cache-friendly layout,
//! ordered iteration for free).

use crate::org::{Entry, ProbeValues};
use tman_common::{Result, TriggerId, Value};
use tman_expr::IndexPlan;

/// A user-supplied constant-set organization.
///
/// Implementations receive the signature's [`IndexPlan`] with every call so
/// they can specialize for equality keys, ranges, or anything the plan
/// grammar grows in the future — the extensibility hook the paper asks for.
pub trait CustomConstantSet: Send + Sync {
    /// Short name, reported as `constantSetOrganization` in the catalog.
    fn name(&self) -> &'static str;

    /// Insert one predicate occurrence.
    fn insert(&mut self, plan: &IndexPlan, entry: Entry) -> Result<()>;

    /// Remove every entry of a trigger, returning how many were removed.
    fn remove_trigger(&mut self, trigger_id: TriggerId) -> Result<usize>;

    /// Visit candidate entries for a probe (the caller evaluates residual
    /// predicates afterwards, exactly as for built-in organizations).
    fn probe(
        &self,
        plan: &IndexPlan,
        probe: &ProbeValues<'_>,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<()>;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Is the organization empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate main-memory footprint in bytes.
    fn memory_bytes(&self) -> usize;

    /// Visit every entry (diagnostics, organization switching).
    fn for_each(&self, visit: &mut dyn FnMut(&Entry)) -> Result<()>;
}

/// Example custom organization: entries sorted by their equality key,
/// probed by binary search. Ordered, allocation-tight, and O(log n) — a
/// plausible middle ground between the paper's strategies 1 and 2.
#[derive(Default)]
pub struct OrderedVecOrg {
    /// (key, entry), sorted by key.
    entries: Vec<(Vec<Value>, Entry)>,
}

impl OrderedVecOrg {
    /// Empty organization.
    pub fn new() -> OrderedVecOrg {
        OrderedVecOrg::default()
    }

    fn key_of(plan: &IndexPlan, e: &Entry) -> Vec<Value> {
        match plan {
            IndexPlan::Equality { const_slots, .. } => {
                const_slots.iter().map(|&s| e.consts[s].clone()).collect()
            }
            _ => Vec::new(),
        }
    }
}

impl CustomConstantSet for OrderedVecOrg {
    fn name(&self) -> &'static str {
        "ordered_vec"
    }

    fn insert(&mut self, plan: &IndexPlan, entry: Entry) -> Result<()> {
        let key = Self::key_of(plan, &entry);
        let pos = self.entries.partition_point(|(k, _)| k <= &key);
        self.entries.insert(pos, (key, entry));
        Ok(())
    }

    fn remove_trigger(&mut self, trigger_id: TriggerId) -> Result<usize> {
        let before = self.entries.len();
        self.entries.retain(|(_, e)| e.trigger_id != trigger_id);
        Ok(before - self.entries.len())
    }

    fn probe(
        &self,
        _plan: &IndexPlan,
        probe: &ProbeValues<'_>,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<()> {
        match probe {
            ProbeValues::Key(key) => {
                let start = self.entries.partition_point(|(k, _)| k.as_slice() < *key);
                for (k, e) in &self.entries[start..] {
                    if k.as_slice() != *key {
                        break;
                    }
                    visit(e);
                }
            }
            ProbeValues::Stab(v) => {
                // Not specialized for ranges: linear scan with the bound
                // check (a custom organization may of course do better —
                // that is the point of the extension hook).
                for (_, e) in &self.entries {
                    if crate::org::interval_contains(_plan, e, v) {
                        visit(e);
                    }
                }
            }
            ProbeValues::All => {
                for (_, e) in &self.entries {
                    visit(e);
                }
            }
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn memory_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(k, e)| {
                k.iter().map(Value::heap_size).sum::<usize>()
                    + std::mem::size_of::<Entry>()
                    + e.consts.iter().map(Value::heap_size).sum::<usize>()
            })
            .sum()
    }

    fn for_each(&self, visit: &mut dyn FnMut(&Entry)) -> Result<()> {
        for (_, e) in &self.entries {
            visit(e);
        }
        Ok(())
    }
}
