//! The adaptive constant-set organization **governor**.
//!
//! §5.2 argues the memory-resident organizations "make the common case
//! fast" while the database-backed ones "are mandatory" once an
//! equivalence class grows large. The static insert-time thresholds in
//! [`IndexConfig`](crate::IndexConfig) capture only class *size*; this
//! module drives the choice from live per-signature telemetry instead:
//!
//! * every [`SignatureRuntime`](crate::SignatureRuntime) carries a
//!   [`SigActivity`] stats block — cumulative probe/match counters the hot
//!   path bumps with relaxed atomics, plus exponentially-decayed rates the
//!   governor refreshes each pass;
//! * a **governor pass** ([`PredicateIndex::governor_pass`]) runs from the
//!   drivers' maintenance path (never inside `insert()` under the org
//!   write lock), decides promotions *and* demotions with hysteresis
//!   bands so a class oscillating around a threshold does not thrash, and
//!   enforces a global memory budget by force-spilling the coldest large
//!   classes to the database;
//! * migration happens off the probe critical path: the new organization
//!   is built from a snapshot while probes continue against the old one,
//!   then swapped in one short write-lock window guarded by a mutation
//!   epoch (see [`SignatureRuntime::migrate_to`](crate::SignatureRuntime::migrate_to)).

use crate::org::OrgKind;
use crate::IndexConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tman_common::stats::Counter;
use tman_common::SignatureId;

/// Rough per-entry memory estimate used when a database-resident class has
/// no recorded spill size (e.g. it was promoted before telemetry attached).
pub const ENTRY_BYTES_ESTIMATE: usize = 96;

/// Per-signature activity stats block: cumulative counters bumped on the
/// probe path (relaxed atomics, no locks), decayed rates owned by the
/// governor, and the mutation epoch that guards lock-free org migration.
#[derive(Debug, Default)]
pub struct SigActivity {
    /// Cumulative probes against this signature's constant set.
    probes: AtomicU64,
    /// Cumulative full matches produced.
    matches: AtomicU64,
    /// Probe count at the previous governor pass.
    last_probes: AtomicU64,
    /// Match count at the previous governor pass.
    last_matches: AtomicU64,
    /// EWMA probes-per-pass, stored as `f64` bits.
    probe_rate_bits: AtomicU64,
    /// EWMA matches-per-pass, stored as `f64` bits.
    match_rate_bits: AtomicU64,
    /// Bumped by every mutation (insert / remove / org switch). A
    /// migration snapshots the epoch, builds off-lock, and aborts its swap
    /// if the epoch moved — probes never invalidate a migration.
    epoch: AtomicU64,
    /// Memory-bytes estimate recorded when the class was moved to the
    /// database (0 while memory-resident). Used to decide whether the
    /// class fits back under the budget.
    spill_bytes: AtomicU64,
    /// 1 when the class was spilled by budget enforcement rather than the
    /// size threshold; such classes return to memory only when headroom
    /// allows.
    budget_spilled: AtomicU64,
}

impl SigActivity {
    /// Fresh block (all zeros).
    pub fn new() -> SigActivity {
        SigActivity::default()
    }

    /// Hot path: one constant-set probe happened.
    #[inline]
    pub fn record_probe(&self) {
        self.probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Hot path: one full match was produced.
    #[inline]
    pub fn record_match(&self) {
        self.matches.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative probes.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Cumulative matches.
    pub fn matches(&self) -> u64 {
        self.matches.load(Ordering::Relaxed)
    }

    /// Current mutation epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Record one mutation (insert / remove / org switch).
    #[inline]
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Governor-only: fold the probe/match deltas since the previous pass
    /// into the decayed rates and return `(probe_rate, match_rate)`.
    pub fn tick(&self, alpha: f64) -> (f64, f64) {
        let fold = |cum: &AtomicU64, last: &AtomicU64, bits: &AtomicU64| {
            let now = cum.load(Ordering::Relaxed);
            let prev = last.swap(now, Ordering::Relaxed);
            let delta = now.saturating_sub(prev) as f64;
            let old = f64::from_bits(bits.load(Ordering::Relaxed));
            let rate = alpha * delta + (1.0 - alpha) * old;
            bits.store(rate.to_bits(), Ordering::Relaxed);
            rate
        };
        (
            fold(&self.probes, &self.last_probes, &self.probe_rate_bits),
            fold(&self.matches, &self.last_matches, &self.match_rate_bits),
        )
    }

    /// Decayed probes-per-pass.
    pub fn probe_rate(&self) -> f64 {
        f64::from_bits(self.probe_rate_bits.load(Ordering::Relaxed))
    }

    /// Decayed matches-per-pass.
    pub fn match_rate(&self) -> f64 {
        f64::from_bits(self.match_rate_bits.load(Ordering::Relaxed))
    }

    /// Record that the class now lives in the database, remembering how
    /// many memory bytes it gave back and why it moved.
    pub fn set_spill(&self, bytes: usize, by_budget: bool) {
        self.spill_bytes.store(bytes as u64, Ordering::Relaxed);
        self.budget_spilled
            .store(u64::from(by_budget), Ordering::Relaxed);
    }

    /// The class is memory-resident again.
    pub fn clear_spill(&self) {
        self.spill_bytes.store(0, Ordering::Relaxed);
        self.budget_spilled.store(0, Ordering::Relaxed);
    }

    /// Memory-bytes estimate recorded at spill time (0 if memory-resident).
    pub fn spill_bytes(&self) -> usize {
        self.spill_bytes.load(Ordering::Relaxed) as usize
    }

    /// Was the class spilled by budget enforcement?
    pub fn budget_spilled(&self) -> bool {
        self.budget_spilled.load(Ordering::Relaxed) != 0
    }
}

/// Per-signature partition-activity block, the condition-partition
/// controller's counterpart to [`SigActivity`]. It lives next to the
/// governor's block on every [`SignatureRuntime`](crate::SignatureRuntime)
/// but keeps its **own** probe snapshot and EWMA: the governor owns
/// [`SigActivity::tick`], and the two feedback loops run on independent
/// schedules, so they must not fold the same deltas.
///
/// The `fanout` cell is the controller's published decision: the engine's
/// probe path reads it (relaxed) to choose how many Figure-5
/// `SigPartition` tasks to fan a token out into. `1` means partitioning
/// is disengaged for this signature.
#[derive(Debug)]
pub struct PartitionActivity {
    /// Effective fan-out the probe path should use (≥ 1).
    fanout: AtomicU64,
    /// Cumulative fan-outs actually taken on the probe path.
    fanouts: AtomicU64,
    /// Probe count at the previous controller pass (controller-owned
    /// snapshot of [`SigActivity::probes`]).
    last_probes: AtomicU64,
    /// EWMA probes-per-pass, stored as `f64` bits (controller-owned).
    probe_rate_bits: AtomicU64,
    /// Controller pass number at the last fan-out change (hysteresis).
    last_change_pass: AtomicU64,
}

impl Default for PartitionActivity {
    fn default() -> PartitionActivity {
        PartitionActivity {
            fanout: AtomicU64::new(1),
            fanouts: AtomicU64::new(0),
            last_probes: AtomicU64::new(0),
            probe_rate_bits: AtomicU64::new(0),
            last_change_pass: AtomicU64::new(0),
        }
    }
}

impl PartitionActivity {
    /// Fresh block (fan-out 1, rates zero).
    pub fn new() -> PartitionActivity {
        PartitionActivity::default()
    }

    /// Effective fan-out the probe path should use (≥ 1).
    #[inline]
    pub fn fanout(&self) -> usize {
        self.fanout.load(Ordering::Relaxed).max(1) as usize
    }

    /// Publish a new fan-out decision.
    pub fn set_fanout(&self, n: usize) {
        self.fanout.store(n.max(1) as u64, Ordering::Relaxed);
    }

    /// Hot path: one token was fanned out into `SigPartition` tasks.
    #[inline]
    pub fn record_fanout(&self) {
        self.fanouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative fan-outs taken on the probe path.
    pub fn fanouts(&self) -> u64 {
        self.fanouts.load(Ordering::Relaxed)
    }

    /// Controller-only: fold the probe delta since the previous controller
    /// pass into the decayed rate and return it. `cum_probes` comes from
    /// the signature's [`SigActivity::probes`]; keeping the snapshot here
    /// leaves the governor's own fold untouched.
    pub fn tick_probe_rate(&self, cum_probes: u64, alpha: f64) -> f64 {
        let prev = self.last_probes.swap(cum_probes, Ordering::Relaxed);
        let delta = cum_probes.saturating_sub(prev) as f64;
        let old = f64::from_bits(self.probe_rate_bits.load(Ordering::Relaxed));
        let rate = alpha * delta + (1.0 - alpha) * old;
        self.probe_rate_bits
            .store(rate.to_bits(), Ordering::Relaxed);
        rate
    }

    /// Decayed probes-per-controller-pass.
    pub fn probe_rate(&self) -> f64 {
        f64::from_bits(self.probe_rate_bits.load(Ordering::Relaxed))
    }

    /// Controller pass number at the last fan-out change.
    pub fn last_change_pass(&self) -> u64 {
        self.last_change_pass.load(Ordering::Relaxed)
    }

    /// Record the pass number of a fan-out change (hysteresis cooldown).
    pub fn set_last_change_pass(&self, pass: u64) {
        self.last_change_pass.store(pass, Ordering::Relaxed);
    }
}

/// Governor tuning. Promotion thresholds mirror
/// [`IndexConfig`](crate::IndexConfig); the demotion bands sit a
/// `demote_factor` below them (hysteresis), so a class must shrink well
/// under a threshold before it moves back down.
#[derive(Debug, Clone)]
pub struct GovernorPolicy {
    /// Entries above which a list becomes a memory index.
    pub list_to_index: usize,
    /// Entries above which a memory org spills to the indexed database
    /// table (`usize::MAX` disables size-based spill; the memory budget
    /// can still force one).
    pub index_to_db: usize,
    /// Demotion band as a fraction of the promotion threshold: a class
    /// demotes only once `len <= threshold * demote_factor`.
    pub demote_factor: f64,
    /// A budget-spilled class returns to memory only while
    /// `resident + class bytes <= budget * refill_headroom`, so refills
    /// stop before the budget forces the next spill.
    pub refill_headroom: f64,
    /// EWMA weight of the newest probe/match delta in [`SigActivity::tick`].
    pub decay: f64,
    /// Global cap on constant-set memory; the coldest (lowest decayed
    /// probe rate) large classes spill to the database until resident
    /// bytes fit. `None` disables enforcement.
    pub memory_budget: Option<usize>,
    /// Classes smaller than this are never budget-spilled (the db handle
    /// overhead would exceed the savings).
    pub min_spill_bytes: usize,
    /// How often a migration's swap may be invalidated by a concurrent
    /// mutation before the governor gives up until the next pass.
    pub max_swap_retries: u32,
    /// Which list organization demotions land on ([`OrgKind::MemList`]
    /// unless the Figure-4 normalization is disabled).
    pub list_kind: OrgKind,
}

impl GovernorPolicy {
    /// Derive a policy from the static index thresholds.
    pub fn from_config(cfg: &IndexConfig) -> GovernorPolicy {
        GovernorPolicy {
            list_to_index: cfg.list_to_index,
            index_to_db: cfg.index_to_db,
            demote_factor: 0.5,
            refill_headroom: 0.8,
            decay: 0.3,
            memory_budget: None,
            min_spill_bytes: 1024,
            max_swap_retries: 3,
            list_kind: if cfg.normalized {
                OrgKind::MemList
            } else {
                OrgKind::MemListDenorm
            },
        }
    }
}

impl Default for GovernorPolicy {
    fn default() -> GovernorPolicy {
        GovernorPolicy::from_config(&IndexConfig::default())
    }
}

/// What the governor saw for one signature this pass (inputs to
/// [`decide`]; pure data so the policy is unit-testable).
#[derive(Debug, Clone)]
pub struct SigObservation {
    /// Current organization.
    pub kind: OrgKind,
    /// Equivalence-class size.
    pub len: usize,
    /// Approximate main-memory bytes (db orgs report only their handle).
    pub mem_bytes: usize,
    /// Decayed probes-per-pass.
    pub probe_rate: f64,
    /// Decayed matches-per-pass.
    pub match_rate: f64,
    /// Does the signature have an indexable part (`IndexPlan` ≠ `None`)?
    pub indexable: bool,
    /// Is a database attached (strategies 3/4 available)?
    pub has_db: bool,
    /// Memory estimate recorded at spill time (0 if memory-resident).
    pub spill_bytes: usize,
    /// Was the class spilled by the budget rather than the size threshold?
    pub budget_spilled: bool,
}

/// Ordering of the organizations along the promote/demote axis.
pub fn org_rank(kind: OrgKind) -> u8 {
    match kind {
        OrgKind::MemList | OrgKind::MemListDenorm => 0,
        OrgKind::MemIndex | OrgKind::Custom(_) => 1,
        OrgKind::DbTable | OrgKind::DbIndexed => 2,
    }
}

/// The hysteresis decision for one signature: `Some(target)` when the
/// class should change organization, `None` to stay put. `mem_total` is
/// the current resident constant-set memory, used to keep demotions from
/// re-busting the budget. Budget *enforcement* (forced spills) is separate
/// — see [`PredicateIndex::governor_pass`](crate::PredicateIndex::governor_pass).
pub fn decide(obs: &SigObservation, policy: &GovernorPolicy, mem_total: usize) -> Option<OrgKind> {
    let band = |threshold: usize| threshold as f64 * policy.demote_factor;
    let fits_budget = |extra: usize| match policy.memory_budget {
        None => true,
        Some(b) => (mem_total + extra) as f64 <= b as f64 * policy.refill_headroom,
    };
    match obs.kind {
        // User-installed and explicitly-forced organizations are never
        // second-guessed.
        OrgKind::Custom(_) | OrgKind::DbTable => None,
        OrgKind::MemList | OrgKind::MemListDenorm => {
            if obs.len > policy.index_to_db && obs.has_db {
                Some(OrgKind::DbIndexed)
            } else if obs.len > policy.list_to_index && obs.indexable {
                Some(OrgKind::MemIndex)
            } else {
                None
            }
        }
        OrgKind::MemIndex => {
            if obs.len > policy.index_to_db && obs.has_db {
                Some(OrgKind::DbIndexed)
            } else if (obs.len as f64) <= band(policy.list_to_index) {
                Some(policy.list_kind)
            } else {
                None
            }
        }
        OrgKind::DbIndexed => {
            let est = obs.spill_bytes.max(obs.len * ENTRY_BYTES_ESTIMATE);
            let target = if obs.indexable && (obs.len as f64) > band(policy.list_to_index) {
                OrgKind::MemIndex
            } else {
                policy.list_kind
            };
            if obs.budget_spilled {
                // Forced out by the budget: return only when there is
                // comfortable headroom, regardless of size thresholds.
                if fits_budget(est) {
                    Some(target)
                } else {
                    None
                }
            } else if (obs.len as f64) <= band(policy.index_to_db) && fits_budget(est) {
                Some(target)
            } else {
                None
            }
        }
    }
}

/// Why the governor moved a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationReason {
    /// The hysteresis bands called for a promotion or demotion.
    Hysteresis,
    /// Budget enforcement force-spilled a cold class.
    BudgetSpill,
}

/// Timing and outcome of one organization migration.
#[derive(Debug, Clone)]
pub struct MigrationOutcome {
    /// Organization before.
    pub from: OrgKind,
    /// Target organization.
    pub to: OrgKind,
    /// Entries migrated.
    pub entries: usize,
    /// Time spent building the new organization *off* the org lock.
    pub build_ns: u64,
    /// Time the org write lock was actually held for the swap — the only
    /// window during which probes block.
    pub swap_ns: u64,
    /// Swap attempts invalidated by concurrent mutations.
    pub retries: u32,
    /// `false` when every retry was invalidated and the organization was
    /// left unchanged (the next pass will try again).
    pub completed: bool,
    /// Memory footprint of the old organization (budget accounting).
    pub mem_bytes_before: usize,
}

/// One governor-initiated migration, as reported per pass.
#[derive(Debug, Clone)]
pub struct MigrationRecord {
    /// Which signature moved.
    pub sig: SignatureId,
    /// Why it moved.
    pub reason: MigrationReason,
    /// What happened.
    pub outcome: MigrationOutcome,
}

/// What one governor pass did ([`PredicateIndex::governor_pass`](crate::PredicateIndex::governor_pass)).
#[derive(Debug, Clone, Default)]
pub struct GovernorReport {
    /// Signatures examined.
    pub examined: usize,
    /// Migrations attempted (completed or aborted).
    pub migrations: Vec<MigrationRecord>,
    /// Resident constant-set bytes after the pass.
    pub mem_bytes: usize,
    /// Wall time of the whole pass.
    pub pass_ns: u64,
    /// Errors from individual migrations (the pass continues past them).
    pub errors: Vec<String>,
}

/// Aggregate governor counters, shared `Arc`s so they can be registered
/// into a telemetry registry ([`crate::PredicateIndex::attach_telemetry`]).
#[derive(Debug, Clone, Default)]
pub struct GovernorStats {
    /// Governor passes run.
    pub passes: Arc<Counter>,
    /// Completed migrations to a higher-rank organization.
    pub promotions: Arc<Counter>,
    /// Completed migrations to a lower-rank organization.
    pub demotions: Arc<Counter>,
    /// Completed budget-forced spills (also counted as promotions).
    pub budget_spills: Arc<Counter>,
    /// Migrations abandoned after every swap retry was invalidated.
    pub aborted_migrations: Arc<Counter>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(kind: OrgKind, len: usize) -> SigObservation {
        SigObservation {
            kind,
            len,
            mem_bytes: len * 64,
            probe_rate: 1.0,
            match_rate: 0.0,
            indexable: true,
            has_db: true,
            spill_bytes: 0,
            budget_spilled: false,
        }
    }

    fn policy() -> GovernorPolicy {
        GovernorPolicy {
            list_to_index: 32,
            index_to_db: 1000,
            ..GovernorPolicy::default()
        }
    }

    #[test]
    fn promotes_past_thresholds() {
        let p = policy();
        assert_eq!(
            decide(&obs(OrgKind::MemList, 33), &p, 0),
            Some(OrgKind::MemIndex)
        );
        assert_eq!(
            decide(&obs(OrgKind::MemIndex, 1001), &p, 0),
            Some(OrgKind::DbIndexed)
        );
        // A list that blew straight past both thresholds goes directly to
        // the database.
        assert_eq!(
            decide(&obs(OrgKind::MemList, 2000), &p, 0),
            Some(OrgKind::DbIndexed)
        );
    }

    #[test]
    fn hysteresis_band_prevents_thrash() {
        let p = policy();
        // Inside the band (16 < len <= 32): no demotion.
        assert_eq!(decide(&obs(OrgKind::MemIndex, 20), &p, 0), None);
        assert_eq!(decide(&obs(OrgKind::MemIndex, 17), &p, 0), None);
        // At or below half the threshold: demote.
        assert_eq!(
            decide(&obs(OrgKind::MemIndex, 16), &p, 0),
            Some(OrgKind::MemList)
        );
        // Same band on the db edge.
        assert_eq!(decide(&obs(OrgKind::DbIndexed, 800), &p, 0), None);
        assert_eq!(
            decide(&obs(OrgKind::DbIndexed, 500), &p, 0),
            Some(OrgKind::MemIndex)
        );
    }

    #[test]
    fn non_indexable_signatures_stay_lists() {
        let p = policy();
        let mut o = obs(OrgKind::MemList, 100);
        o.indexable = false;
        assert_eq!(decide(&o, &p, 0), None);
    }

    #[test]
    fn forced_and_custom_orgs_left_alone() {
        let p = policy();
        assert_eq!(decide(&obs(OrgKind::DbTable, 5), &p, 0), None);
        assert_eq!(decide(&obs(OrgKind::Custom("x"), 5), &p, 0), None);
    }

    #[test]
    fn budget_spilled_class_needs_headroom_to_return() {
        let mut p = policy();
        p.memory_budget = Some(10_000);
        let mut o = obs(OrgKind::DbIndexed, 40);
        o.budget_spilled = true;
        o.spill_bytes = 4_000;
        // 5k resident + 4k returning = 9k > 10k * 0.8 headroom: stay out.
        assert_eq!(decide(&o, &p, 5_000), None);
        // 3k resident + 4k returning = 7k <= 8k: come back.
        assert_eq!(decide(&o, &p, 3_000), Some(OrgKind::MemIndex));
    }

    #[test]
    fn denormalized_config_demotes_to_denorm_list() {
        let mut p = policy();
        p.list_kind = OrgKind::MemListDenorm;
        assert_eq!(
            decide(&obs(OrgKind::MemIndex, 4), &p, 0),
            Some(OrgKind::MemListDenorm)
        );
    }

    #[test]
    fn activity_rates_decay() {
        let a = SigActivity::new();
        for _ in 0..100 {
            a.record_probe();
        }
        let (p1, _) = a.tick(0.5);
        assert!((p1 - 50.0).abs() < 1e-9, "0.5 * 100 = {p1}");
        // No new probes: rate halves again.
        let (p2, _) = a.tick(0.5);
        assert!((p2 - 25.0).abs() < 1e-9, "{p2}");
        assert_eq!(a.probes(), 100);
    }

    #[test]
    fn partition_activity_defaults_and_folds() {
        let p = PartitionActivity::new();
        assert_eq!(p.fanout(), 1);
        p.set_fanout(4);
        assert_eq!(p.fanout(), 4);
        // set_fanout(0) clamps to the disengaged state, never zero.
        p.set_fanout(0);
        assert_eq!(p.fanout(), 1);
        // Controller-owned fold: 100 probes at alpha 0.5, then no new ones.
        let r1 = p.tick_probe_rate(100, 0.5);
        assert!((r1 - 50.0).abs() < 1e-9, "{r1}");
        let r2 = p.tick_probe_rate(100, 0.5);
        assert!((r2 - 25.0).abs() < 1e-9, "{r2}");
        assert!((p.probe_rate() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn epoch_tracks_mutations() {
        let a = SigActivity::new();
        let e0 = a.epoch();
        a.bump_epoch();
        a.bump_epoch();
        assert_eq!(a.epoch(), e0 + 2);
    }
}
