use super::*;
use tman_common::{DataType, EventKind, TokenOp};
use tman_expr::cnf::{remap_var, to_cnf};
use tman_expr::BindCtx;
use tman_lang::parse_expression;

fn emp_schema() -> Schema {
    Schema::from_pairs(&[
        ("name", DataType::Varchar(32)),
        ("salary", DataType::Float),
        ("dept", DataType::Int),
    ])
}

const EMP: DataSourceId = DataSourceId(1);

/// Register `cond` (over the emp schema) as trigger `tid`'s predicate.
fn add(ix: &PredicateIndex, cond: &str, event: EventKind, tid: u64) -> Arc<SignatureRuntime> {
    let schema = emp_schema();
    let ctx = BindCtx::new(vec![("emp".into(), &schema)]);
    let cnf = to_cnf(&ctx.pred(&parse_expression(cond).unwrap()).unwrap()).unwrap();
    let canon = remap_var(&cnf, 0, 0, "emp");
    let (sig, consts) = tman_expr::signature::analyze_selection(&canon, EMP, event, vec![]);
    let (rt, _) = ix
        .add_predicate(
            EMP,
            &schema,
            sig,
            consts,
            ExprId(tid),
            TriggerId(tid),
            NodeId(0),
        )
        .unwrap();
    rt
}

fn ins(name: &str, salary: f64, dept: i64) -> UpdateDescriptor {
    UpdateDescriptor::insert(
        EMP,
        Tuple::new(vec![
            Value::str(name),
            Value::Float(salary),
            Value::Int(dept),
        ]),
    )
}

fn matched_ids(ix: &PredicateIndex, tok: &UpdateDescriptor) -> Vec<u64> {
    let mut ids: Vec<u64> = ix
        .match_token_vec(tok)
        .unwrap()
        .into_iter()
        .map(|m| m.trigger_id.raw())
        .collect();
    ids.sort();
    ids
}

#[test]
fn signatures_are_shared_across_triggers() {
    let ix = PredicateIndex::new(IndexConfig::default());
    for t in 0..100u64 {
        add(
            &ix,
            &format!("emp.salary > {}", 1000 * t),
            EventKind::Insert,
            t,
        );
    }
    assert_eq!(ix.num_signatures(), 1, "one signature for 100 triggers");
    assert_eq!(ix.num_entries(), 100);
    // A token with salary 5500 matches triggers with threshold < 5500.
    assert_eq!(
        matched_ids(&ix, &ins("x", 5500.0, 1)),
        (0..=5).collect::<Vec<_>>()
    );
}

#[test]
fn equality_matching_is_exact() {
    let ix = PredicateIndex::new(IndexConfig::default());
    for t in 0..50u64 {
        add(&ix, &format!("emp.dept = {}", t % 10), EventKind::Insert, t);
    }
    assert_eq!(ix.num_signatures(), 1);
    let hits = matched_ids(&ix, &ins("x", 0.0, 7));
    assert_eq!(hits, vec![7, 17, 27, 37, 47]);
    assert!(matched_ids(&ix, &ins("x", 0.0, 99)).is_empty());
}

#[test]
fn event_codes_filter_tokens() {
    let ix = PredicateIndex::new(IndexConfig::default());
    add(&ix, "emp.dept = 1", EventKind::Insert, 1);
    add(&ix, "emp.dept = 1", EventKind::Delete, 2);
    add(&ix, "emp.dept = 1", EventKind::InsertOrUpdate, 3);
    assert_eq!(ix.num_signatures(), 3, "event is part of the signature");

    let t = Tuple::new(vec![Value::str("x"), Value::Float(1.0), Value::Int(1)]);
    let ins_tok = UpdateDescriptor::insert(EMP, t.clone());
    let del_tok = UpdateDescriptor::delete(EMP, t.clone());
    let upd_tok = UpdateDescriptor::update(EMP, t.clone(), t.clone());
    assert_eq!(matched_ids(&ix, &ins_tok), vec![1, 3]);
    assert_eq!(matched_ids(&ix, &del_tok), vec![2]);
    assert_eq!(matched_ids(&ix, &upd_tok), vec![3]);
}

#[test]
fn update_column_events_require_a_change() {
    let schema = emp_schema();
    let ix = PredicateIndex::new(IndexConfig::default());
    let ctx = BindCtx::new(vec![("emp".into(), &schema)]);
    let cnf = to_cnf(
        &ctx.pred(&parse_expression("emp.dept = 5").unwrap())
            .unwrap(),
    )
    .unwrap();
    // `on update(emp.salary)` — salary is column 1.
    let (sig, consts) = tman_expr::signature::analyze_selection(
        &cnf,
        EMP,
        EventKind::Update(vec!["salary".into()]),
        vec![1],
    );
    ix.add_predicate(
        EMP,
        &schema,
        sig,
        consts,
        ExprId(1),
        TriggerId(1),
        NodeId(0),
    )
    .unwrap();

    let old = Tuple::new(vec![Value::str("a"), Value::Float(10.0), Value::Int(5)]);
    let new_salary = Tuple::new(vec![Value::str("a"), Value::Float(20.0), Value::Int(5)]);
    let new_name = Tuple::new(vec![Value::str("b"), Value::Float(10.0), Value::Int(5)]);
    assert_eq!(
        matched_ids(&ix, &UpdateDescriptor::update(EMP, old.clone(), new_salary)),
        vec![1]
    );
    assert!(matched_ids(&ix, &UpdateDescriptor::update(EMP, old, new_name)).is_empty());
}

#[test]
fn residual_is_tested_after_index_probe() {
    let ix = PredicateIndex::new(IndexConfig::default());
    // dept is indexable; the salary range is residual.
    add(
        &ix,
        "emp.dept = 3 and emp.salary > 50000",
        EventKind::Insert,
        1,
    );
    assert_eq!(matched_ids(&ix, &ins("a", 60000.0, 3)), vec![1]);
    assert!(matched_ids(&ix, &ins("a", 40000.0, 3)).is_empty());
    assert!(matched_ids(&ix, &ins("a", 60000.0, 4)).is_empty());
    assert!(ix.stats().residual_tests.get() >= 2);
}

#[test]
fn range_signatures_stab() {
    let ix = PredicateIndex::new(IndexConfig::default());
    for t in 0..100u64 {
        let lo = t * 10;
        add(
            &ix,
            &format!("emp.salary > {lo} and emp.salary <= {}", lo + 50),
            EventKind::Insert,
            t,
        );
    }
    assert_eq!(ix.num_signatures(), 1);
    let hits = matched_ids(&ix, &ins("x", 105.0, 1));
    // intervals (lo, lo+50] containing 105: lo in {60,...,100} by tens ⇒
    // t in {6..=10}.
    assert_eq!(hits, vec![6, 7, 8, 9, 10]);
}

#[test]
fn or_predicates_fall_back_to_full_evaluation() {
    let ix = PredicateIndex::new(IndexConfig::default());
    add(&ix, "emp.dept = 1 or emp.dept = 2", EventKind::Insert, 1);
    add(&ix, "emp.dept = 3 or emp.dept = 4", EventKind::Insert, 2);
    assert_eq!(
        ix.num_signatures(),
        1,
        "same OR structure, different constants"
    );
    assert_eq!(matched_ids(&ix, &ins("x", 0.0, 2)), vec![1]);
    assert_eq!(matched_ids(&ix, &ins("x", 0.0, 4)), vec![2]);
    assert!(matched_ids(&ix, &ins("x", 0.0, 9)).is_empty());
}

#[test]
fn null_token_values_never_match_equality_or_range() {
    let ix = PredicateIndex::new(IndexConfig::default());
    add(&ix, "emp.dept = 1", EventKind::Insert, 1);
    add(&ix, "emp.salary > 0", EventKind::Insert, 2);
    let tok = UpdateDescriptor::insert(
        EMP,
        Tuple::new(vec![Value::str("x"), Value::Null, Value::Null]),
    );
    assert!(matched_ids(&ix, &tok).is_empty());
}

#[test]
fn org_promotion_list_to_index() {
    let cfg = IndexConfig {
        list_to_index: 10,
        ..Default::default()
    };
    let ix = PredicateIndex::new(cfg);
    let mut rt = None;
    for t in 0..25u64 {
        rt = Some(add(&ix, &format!("emp.dept = {t}"), EventKind::Insert, t));
    }
    let rt = rt.unwrap();
    assert_eq!(rt.org_kind(), OrgKind::MemIndex);
    assert_eq!(rt.len(), 25);
    // Still matches correctly after promotion.
    assert_eq!(matched_ids(&ix, &ins("x", 0.0, 13)), vec![13]);
}

#[test]
fn org_promotion_to_database() {
    let db = Arc::new(Database::open_memory(256));
    let cfg = IndexConfig {
        list_to_index: 4,
        index_to_db: 10,
        ..Default::default()
    };
    let ix = PredicateIndex::with_database(cfg, db.clone());
    let mut rt = None;
    for t in 0..30u64 {
        rt = Some(add(&ix, &format!("emp.dept = {t}"), EventKind::Insert, t));
    }
    let rt = rt.unwrap();
    assert_eq!(rt.org_kind(), OrgKind::DbIndexed);
    assert_eq!(rt.len(), 30);
    // The constant table exists in the database with one row per trigger.
    let table = db.table(&rt.const_table_name()).unwrap();
    assert_eq!(table.count().unwrap(), 30);
    // Matching goes through the database index.
    let probes_before = table.stats().index_probes.get();
    assert_eq!(matched_ids(&ix, &ins("x", 0.0, 22)), vec![22]);
    assert!(table.stats().index_probes.get() > probes_before);
}

#[test]
fn forced_org_kinds_all_agree() {
    let db = Arc::new(Database::open_memory(1024));
    for kind in [
        OrgKind::MemList,
        OrgKind::MemListDenorm,
        OrgKind::MemIndex,
        OrgKind::DbTable,
        OrgKind::DbIndexed,
    ] {
        let ix = PredicateIndex::with_database(IndexConfig::default(), db.clone());
        let mut rt = None;
        for t in 0..40u64 {
            rt = Some(add(
                &ix,
                &format!("emp.dept = {}", t % 8),
                EventKind::Insert,
                t,
            ));
        }
        let rt = rt.unwrap();
        rt.set_org(kind).unwrap();
        assert_eq!(rt.org_kind(), kind, "{kind:?}");
        assert_eq!(rt.len(), 40, "{kind:?}");
        let hits = matched_ids(&ix, &ins("x", 0.0, 3));
        assert_eq!(hits, vec![3, 11, 19, 27, 35], "{kind:?}");
    }
}

#[test]
fn forced_org_kinds_agree_for_ranges() {
    let db = Arc::new(Database::open_memory(1024));
    for kind in [
        OrgKind::MemList,
        OrgKind::MemIndex,
        OrgKind::DbTable,
        OrgKind::DbIndexed,
    ] {
        let ix = PredicateIndex::with_database(IndexConfig::default(), db.clone());
        let mut rt = None;
        for t in 0..30u64 {
            rt = Some(add(
                &ix,
                &format!(
                    "emp.salary >= {} and emp.salary < {}",
                    t * 100,
                    t * 100 + 250
                ),
                EventKind::Insert,
                t,
            ));
        }
        let rt = rt.unwrap();
        rt.set_org(kind).unwrap();
        let hits = matched_ids(&ix, &ins("x", 520.0, 0));
        // [t*100, t*100+250) containing 520 ⇒ t ∈ {3, 4, 5}.
        assert_eq!(hits, vec![3, 4, 5], "{kind:?}");
    }
}

#[test]
fn remove_trigger_cleans_all_orgs() {
    let db = Arc::new(Database::open_memory(256));
    let ix = PredicateIndex::with_database(IndexConfig::default(), db);
    for t in 0..10u64 {
        add(&ix, &format!("emp.dept = {t}"), EventKind::Insert, t);
        add(&ix, &format!("emp.salary > {t}"), EventKind::Insert, t);
    }
    assert_eq!(ix.num_entries(), 20);
    assert_eq!(ix.remove_trigger(TriggerId(4)).unwrap(), 2);
    assert_eq!(ix.num_entries(), 18);
    assert!(matched_ids(&ix, &ins("x", 100.0, 4))
        .iter()
        .all(|&t| t != 4));
}

#[test]
fn normalized_vs_denormalized_share_matching_semantics() {
    // Figure 4 ablation: same matches either way.
    let mk = |normalized: bool| {
        let ix = PredicateIndex::new(IndexConfig {
            normalized,
            list_to_index: usize::MAX,
            ..Default::default()
        });
        for t in 0..50u64 {
            add(&ix, "emp.dept = 7", EventKind::Insert, t); // identical constant
        }
        ix
    };
    let norm = mk(true);
    let denorm = mk(false);
    let tok = ins("x", 0.0, 7);
    assert_eq!(matched_ids(&norm, &tok), matched_ids(&denorm, &tok));
    // The normalized layout stores the shared constant once.
    let norm_rt = norm.source(EMP).unwrap().signatures()[0].clone();
    let denorm_rt = denorm.source(EMP).unwrap().signatures()[0].clone();
    assert_eq!(norm_rt.org_kind(), OrgKind::MemList);
    assert_eq!(denorm_rt.org_kind(), OrgKind::MemListDenorm);
    assert!(norm_rt.memory_bytes() < denorm_rt.memory_bytes());
}

#[test]
fn partitioned_probe_covers_all_entries_exactly_once() {
    let ix = PredicateIndex::new(IndexConfig::default());
    let mut rt = None;
    for t in 0..100u64 {
        rt = Some(add(&ix, "emp.dept = 7", EventKind::Insert, t));
    }
    let rt = rt.unwrap();
    let tuple = Tuple::new(vec![Value::str("x"), Value::Float(0.0), Value::Int(7)]);
    let nparts = 4;
    let mut seen = Vec::new();
    for part in 0..nparts {
        rt.probe_partition(&tuple, part, nparts, ix.stats(), &mut |e| {
            seen.push(e.trigger_id.raw())
        })
        .unwrap();
    }
    seen.sort();
    assert_eq!(seen, (0..100).collect::<Vec<_>>());
}

#[test]
fn batched_probe_equals_per_token_probes() {
    // Mixed predicate shapes: equality + residual (sort-merge path), a
    // range plan, and an unindexable full-test signature. Batched probing
    // must deliver, per token, exactly the entries (in the same order) as
    // one probe() per token.
    for cond in [
        "emp.dept = 7 and emp.salary > 10",
        "emp.salary > 25.0",
        "emp.name <> 'q'",
    ] {
        let ix = PredicateIndex::new(IndexConfig {
            list_to_index: 4, // force MemIndex where a plan exists
            ..Default::default()
        });
        let mut rt = None;
        for t in 0..24u64 {
            rt = Some(add(&ix, cond, EventKind::Insert, t));
        }
        let rt = rt.unwrap();
        let tuples: Vec<Tuple> = (0..13)
            .map(|i| {
                Tuple::new(vec![
                    Value::str(if i % 5 == 0 { "q" } else { "x" }),
                    Value::Float((i * 7 % 40) as f64),
                    Value::Int(if i % 3 == 0 { 7 } else { i }),
                ])
            })
            .collect();
        // Duplicate keys on purpose: they must share a lookup yet match
        // independently.
        let mut reference: Vec<Vec<u64>> = Vec::new();
        for t in &tuples {
            let mut one = Vec::new();
            rt.probe(t, ix.stats(), &mut |e| one.push(e.trigger_id.raw()))
                .unwrap();
            reference.push(one);
        }
        let tagged: Vec<(usize, &Tuple)> = tuples.iter().enumerate().collect();
        let mut batched: Vec<Vec<u64>> = vec![Vec::new(); tuples.len()];
        rt.probe_batch(&tagged, ix.stats(), &mut |tag, e| {
            batched[tag].push(e.trigger_id.raw())
        })
        .unwrap();
        assert_eq!(batched, reference, "cond: {cond}");
    }
}

#[test]
fn shard_of_is_stable_and_in_range() {
    let ix = PredicateIndex::new(IndexConfig::default());
    // Structurally different predicates, so two signature classes with
    // consecutive dense ids. (Same-shape predicates share one class.)
    let a = add(&ix, "emp.dept = 1", EventKind::Insert, 1);
    let b = add(&ix, "emp.salary > 2", EventKind::Insert, 2);
    assert_ne!(a.id, b.id);
    assert_eq!(a.shard_of(1), 0);
    for n in [2usize, 4, 8] {
        assert!(a.shard_of(n) < n);
        assert!(b.shard_of(n) < n);
        // Stable: same answer every call (hash of the dense id).
        assert_eq!(a.shard_of(n), a.shard_of(n));
    }
    // Assignment hashes the dense id: consecutive ids spread to
    // consecutive shards.
    assert_eq!(a.shard_of(8), a.id.raw() as usize % 8);
    assert_eq!(b.shard_of(8), b.id.raw() as usize % 8);
    assert_ne!(a.shard_of(8), b.shard_of(8));
}

#[test]
fn unknown_source_matches_nothing() {
    let ix = PredicateIndex::new(IndexConfig::default());
    add(&ix, "emp.dept = 1", EventKind::Insert, 1);
    let tok = UpdateDescriptor::insert(DataSourceId(99), Tuple::new(vec![Value::Int(1)]));
    assert!(ix.match_token_vec(&tok).unwrap().is_empty());
}

#[test]
fn stats_accumulate() {
    let ix = PredicateIndex::new(IndexConfig::default());
    add(&ix, "emp.dept = 1", EventKind::Insert, 1);
    add(&ix, "emp.salary > 10", EventKind::Insert, 2);
    for _ in 0..5 {
        ix.match_token_vec(&ins("x", 20.0, 1)).unwrap();
    }
    assert_eq!(ix.stats().tokens.get(), 5);
    assert_eq!(ix.stats().signatures_probed.get(), 10);
    assert_eq!(ix.stats().matches.get(), 10);
}

#[test]
fn like_and_event_only_predicates() {
    let ix = PredicateIndex::new(IndexConfig::default());
    add(&ix, "emp.name like 'Ir%'", EventKind::Insert, 1);
    // Event-only (no when clause): signature "true".
    let schema = emp_schema();
    let (sig, consts) = tman_expr::signature::analyze_selection(
        &tman_expr::Cnf::truth(),
        EMP,
        EventKind::Insert,
        vec![],
    );
    ix.add_predicate(
        EMP,
        &schema,
        sig,
        consts,
        ExprId(2),
        TriggerId(2),
        NodeId(0),
    )
    .unwrap();

    assert_eq!(matched_ids(&ix, &ins("Iris", 1.0, 1)), vec![1, 2]);
    assert_eq!(matched_ids(&ix, &ins("Bob", 1.0, 1)), vec![2]);
}

#[test]
fn many_signatures_on_one_source() {
    let ix = PredicateIndex::new(IndexConfig::default());
    // K distinct structures, N/K triggers each — the paper's premise.
    let mut t = 0u64;
    for _ in 0..20 {
        add(&ix, &format!("emp.dept = {}", t % 3), EventKind::Insert, t);
        t += 1;
        add(&ix, &format!("emp.salary > {t}"), EventKind::Insert, t);
        t += 1;
        add(&ix, &format!("emp.name = 'p{t}'"), EventKind::Insert, t);
        t += 1;
        add(
            &ix,
            &format!("emp.dept = {} and emp.salary > {t}", t % 5),
            EventKind::Insert,
            t,
        );
        t += 1;
    }
    assert_eq!(ix.num_signatures(), 4);
    assert_eq!(ix.num_entries(), 80);
}

#[test]
fn concurrent_matching_is_safe() {
    let ix = Arc::new(PredicateIndex::new(IndexConfig::default()));
    for t in 0..200u64 {
        add(&ix, &format!("emp.dept = {}", t % 20), EventKind::Insert, t);
    }
    let handles: Vec<_> = (0..8)
        .map(|w| {
            let ix = ix.clone();
            std::thread::spawn(move || {
                let mut total = 0usize;
                for i in 0..500 {
                    let d = ((w * 7 + i) % 20) as i64;
                    total += ix.match_token_vec(&ins("x", 0.0, d)).unwrap().len();
                }
                total
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 500 * 10); // 10 triggers per dept value
    }
}

#[test]
fn token_op_is_distinct_from_event_kind() {
    // Sanity: TokenOp::Update satisfies Update and InsertOrUpdate events.
    assert!(EventKind::InsertOrUpdate.accepts(TokenOp::Update));
    assert!(EventKind::Update(vec![]).accepts(TokenOp::Update));
}

#[test]
fn custom_organization_extensibility() {
    // §9 future work: a user-supplied constant-set organization plugs in
    // and behaves identically to the built-ins.
    let ix = PredicateIndex::new(IndexConfig::default());
    let mut rt = None;
    for t in 0..60u64 {
        rt = Some(add(
            &ix,
            &format!("emp.dept = {}", t % 12),
            EventKind::Insert,
            t,
        ));
    }
    let rt = rt.unwrap();
    let before = matched_ids(&ix, &ins("x", 0.0, 5));

    rt.set_custom_org(Box::new(crate::custom::OrderedVecOrg::new()))
        .unwrap();
    assert_eq!(rt.org_kind(), OrgKind::Custom("ordered_vec"));
    assert_eq!(rt.org_kind().as_str(), "ordered_vec");
    assert_eq!(rt.len(), 60);

    assert_eq!(matched_ids(&ix, &ins("x", 0.0, 5)), before);
    // Removal flows through the custom org too.
    ix.remove_trigger(TriggerId(5)).unwrap();
    assert_eq!(rt.len(), 59);
    assert!(!matched_ids(&ix, &ins("x", 0.0, 5)).contains(&5));
    // Inserting more entries does not auto-promote away from the custom org.
    add(&ix, "emp.dept = 99", EventKind::Insert, 999);
    assert_eq!(rt.org_kind(), OrgKind::Custom("ordered_vec"));
    // And switching back to a built-in works.
    rt.set_org(OrgKind::MemIndex).unwrap();
    assert_eq!(matched_ids(&ix, &ins("x", 0.0, 99)), vec![999]);
}

#[test]
fn custom_organization_handles_ranges() {
    let ix = PredicateIndex::new(IndexConfig::default());
    let mut rt = None;
    for t in 0..20u64 {
        rt = Some(add(
            &ix,
            &format!("emp.salary > {} and emp.salary <= {}", t * 10, t * 10 + 25),
            EventKind::Insert,
            t,
        ));
    }
    let rt = rt.unwrap();
    let before = matched_ids(&ix, &ins("x", 57.0, 0));
    rt.set_custom_org(Box::new(crate::custom::OrderedVecOrg::new()))
        .unwrap();
    assert_eq!(matched_ids(&ix, &ins("x", 57.0, 0)), before);
}

// ---------------------------------------------------------------------------
// Adaptive governor (see `governor.rs`).
// ---------------------------------------------------------------------------

#[test]
fn adaptive_mode_disables_insert_time_promotion() {
    let ix = PredicateIndex::new(IndexConfig {
        list_to_index: 4,
        adaptive: true,
        ..Default::default()
    });
    let mut rt = None;
    for t in 0..50u64 {
        rt = Some(add(&ix, &format!("emp.dept = {t}"), EventKind::Insert, t));
    }
    // Under the governor, insert() never reorganizes.
    assert_eq!(rt.unwrap().org_kind(), OrgKind::MemList);
}

#[test]
fn governor_promotes_and_demotes_with_hysteresis() {
    let ix = PredicateIndex::new(IndexConfig {
        list_to_index: 8,
        adaptive: true,
        ..Default::default()
    });
    let mut rt = None;
    for t in 0..20u64 {
        rt = Some(add(&ix, &format!("emp.dept = {t}"), EventKind::Insert, t));
    }
    let rt = rt.unwrap();
    assert_eq!(rt.org_kind(), OrgKind::MemList);

    let policy = GovernorPolicy::from_config(&IndexConfig {
        list_to_index: 8,
        ..Default::default()
    });
    let report = ix.governor_pass(&policy);
    assert_eq!(report.examined, 1);
    assert_eq!(report.migrations.len(), 1);
    assert_eq!(rt.org_kind(), OrgKind::MemIndex);
    assert_eq!(ix.governor_stats().promotions.get(), 1);
    assert_eq!(matched_ids(&ix, &ins("x", 0.0, 7)), vec![7]);

    // Shrink into the hysteresis band (8 > len > 4): no demotion yet.
    for t in 14..20u64 {
        ix.remove_trigger(TriggerId(t)).unwrap();
    }
    assert_eq!(rt.len(), 14);
    for t in 7..14u64 {
        ix.remove_trigger(TriggerId(t)).unwrap();
    }
    assert_eq!(rt.len(), 7);
    ix.governor_pass(&policy);
    assert_eq!(rt.org_kind(), OrgKind::MemIndex, "inside the band: stay");

    // Below the band (len <= 8 * 0.5): demote back to the list.
    for t in 4..7u64 {
        ix.remove_trigger(TriggerId(t)).unwrap();
    }
    ix.governor_pass(&policy);
    assert_eq!(rt.org_kind(), OrgKind::MemList);
    assert_eq!(ix.governor_stats().demotions.get(), 1);
    assert_eq!(matched_ids(&ix, &ins("x", 0.0, 2)), vec![2]);
}

#[test]
fn governor_spills_to_database_and_comes_back() {
    // Satellite: the DbIndexed path end-to-end — size-based spill through
    // the governor, probes served by the database index, demotion back to
    // memory once the class shrinks, table retired.
    let db = Arc::new(Database::open_memory(1024));
    let cfg = IndexConfig {
        list_to_index: 4,
        index_to_db: 25,
        adaptive: true,
        ..Default::default()
    };
    let ix = PredicateIndex::with_database(cfg.clone(), db.clone());
    let mut rt = None;
    for t in 0..40u64 {
        rt = Some(add(&ix, &format!("emp.dept = {t}"), EventKind::Insert, t));
    }
    let rt = rt.unwrap();
    assert_eq!(rt.org_kind(), OrgKind::MemList, "adaptive: no static spill");

    let policy = GovernorPolicy::from_config(&cfg);
    let report = ix.governor_pass(&policy);
    assert_eq!(rt.org_kind(), OrgKind::DbIndexed);
    assert!(report.migrations.iter().all(|m| m.outcome.completed));

    // Probes are served through the database index.
    let table = db.table(&rt.const_table_name()).unwrap();
    assert_eq!(table.count().unwrap(), 40);
    let probes_before = table.stats().index_probes.get();
    assert_eq!(matched_ids(&ix, &ins("x", 0.0, 22)), vec![22]);
    assert!(table.stats().index_probes.get() > probes_before);

    // Shrink well below the demotion band: the class comes back to memory
    // (len 10 <= 25 * 0.5) and the constant table is retired.
    for t in 10..40u64 {
        ix.remove_trigger(TriggerId(t)).unwrap();
    }
    ix.governor_pass(&policy);
    assert_eq!(
        rt.org_kind(),
        OrgKind::MemIndex,
        "10 > 4*0.5: index, not list"
    );
    assert!(
        !db.has_table(&rt.const_table_name()),
        "demotion retires the constant table"
    );
    assert_eq!(matched_ids(&ix, &ins("x", 0.0, 3)), vec![3]);
    assert_eq!(ix.governor_stats().demotions.get(), 1);
}

#[test]
fn governor_budget_spills_coldest_class_first() {
    let db = Arc::new(Database::open_memory(1024));
    // High list_to_index: no hysteresis promotions — the pass is a pure
    // budget-enforcement exercise with exact memory accounting.
    let cfg = IndexConfig {
        list_to_index: 64,
        adaptive: true,
        ..Default::default()
    };
    let ix = PredicateIndex::with_database(cfg.clone(), db.clone());
    // Two classes; the cold one fires on Delete, so the insert probes
    // below drive its decayed probe rate to zero while the hot one climbs.
    let mut hot = None;
    let mut cold = None;
    for t in 0..30u64 {
        hot = Some(add(&ix, &format!("emp.dept = {t}"), EventKind::Insert, t));
        cold = Some(add(
            &ix,
            &format!("emp.salary > {}", t * 100),
            EventKind::Delete,
            100 + t,
        ));
    }
    let (hot, cold) = (hot.unwrap(), cold.unwrap());
    for _ in 0..50 {
        matched_ids(&ix, &ins("x", -1.0, 7));
    }
    assert!(hot.activity().probes() >= 50);
    assert_eq!(cold.activity().probes(), 0, "delete sig unseen by inserts");

    let mut policy = GovernorPolicy::from_config(&cfg);
    policy.min_spill_bytes = 1;
    // Budget one byte under the combined footprint: exactly one spill —
    // the coldest class — restores the invariant.
    let total = hot.memory_bytes() + cold.memory_bytes();
    policy.memory_budget = Some(total - 1);
    let report = ix.governor_pass(&policy);

    assert_eq!(cold.org_kind(), OrgKind::DbIndexed, "cold class spilled");
    assert_eq!(hot.org_kind(), OrgKind::MemList, "hot class untouched");
    assert_eq!(ix.governor_stats().budget_spills.get(), 1);
    assert!(report.mem_bytes <= policy.memory_budget.unwrap());
    assert!(report
        .migrations
        .iter()
        .any(|m| m.reason == MigrationReason::BudgetSpill));
    // Matching is unaffected on both sides of the spill.
    assert_eq!(matched_ids(&ix, &ins("x", 550.0, 7)), vec![7]);
    let del = UpdateDescriptor::delete(
        EMP,
        Tuple::new(vec![Value::str("x"), Value::Float(550.0), Value::Int(7)]),
    );
    assert_eq!(matched_ids(&ix, &del), (100..=105).collect::<Vec<_>>());

    // Lift the budget: the spilled class returns to memory on a later pass
    // (len 30 is under list_to_index, so it lands back on the list).
    policy.memory_budget = None;
    ix.governor_pass(&policy);
    assert_eq!(cold.org_kind(), OrgKind::MemList, "refilled after spill");
    assert!(!cold.activity().budget_spilled());
    assert_eq!(matched_ids(&ix, &del), (100..=105).collect::<Vec<_>>());
}

#[test]
fn migration_swap_window_is_bounded() {
    // The org write lock is held for the pointer swap only — the rebuild
    // happens off-lock. With a large class the build dominates the swap by
    // orders of magnitude; assert the conservative direction.
    let ix = PredicateIndex::new(IndexConfig {
        adaptive: true,
        ..Default::default()
    });
    let mut rt = None;
    for t in 0..20_000u64 {
        rt = Some(add(&ix, &format!("emp.dept = {t}"), EventKind::Insert, t));
    }
    let rt = rt.unwrap();
    let outcome = rt.migrate_to(OrgKind::MemIndex, 3).unwrap();
    assert!(outcome.completed);
    assert_eq!(outcome.entries, 20_000);
    assert!(
        outcome.swap_ns < outcome.build_ns,
        "swap ({}) must be shorter than the off-lock build ({})",
        outcome.swap_ns,
        outcome.build_ns
    );
    assert_eq!(matched_ids(&ix, &ins("x", 0.0, 19_999)), vec![19_999]);
}

#[test]
fn concurrent_mutation_invalidates_migration_snapshot() {
    let ix = PredicateIndex::new(IndexConfig {
        adaptive: true,
        ..Default::default()
    });
    let mut rt = None;
    for t in 0..100u64 {
        rt = Some(add(&ix, &format!("emp.dept = {t}"), EventKind::Insert, t));
    }
    let rt = rt.unwrap();
    let epoch0 = rt.activity().epoch();
    // A mutation between snapshot and swap forces a retry; with
    // max_retries = 0 and a mutation per attempt the migration gives up.
    add(&ix, "emp.dept = 100", EventKind::Insert, 100);
    assert!(rt.activity().epoch() > epoch0, "insert bumps the epoch");
    let outcome = rt.migrate_to(OrgKind::MemIndex, 3).unwrap();
    assert!(outcome.completed, "no concurrent mutation now: completes");
    assert_eq!(rt.org_kind(), OrgKind::MemIndex);
}

fn stress_governor(triggers: u64, probers: usize, rounds: usize) {
    use std::sync::atomic::AtomicBool;

    let db = Arc::new(Database::open_memory(4096));
    let cfg = IndexConfig {
        list_to_index: 32,
        index_to_db: 600,
        adaptive: true,
        ..Default::default()
    };
    let ix = Arc::new(PredicateIndex::with_database(cfg.clone(), db));
    // A stable population that must match throughout, plus a churn band
    // the mutator threads insert and remove.
    for t in 0..triggers {
        add(&ix, &format!("emp.dept = {}", t % 50), EventKind::Insert, t);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let expected_per_dept = triggers / 50;

    let mut handles = Vec::new();
    for w in 0..probers {
        let ix = ix.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut probes = 0u64;
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let d = ((w as u64 * 13 + i) % 50) as i64;
                let hits = ix.match_token_vec(&ins("x", 0.0, d)).unwrap();
                // Stable triggers (id % 50 == d, id < triggers) must all be
                // present exactly once — no missed, duplicated, or phantom
                // matches while the governor swaps organizations.
                let mut stable: Vec<u64> = hits
                    .iter()
                    .map(|m| m.trigger_id.raw())
                    .filter(|&t| t < triggers)
                    .collect();
                stable.sort_unstable();
                stable.dedup();
                assert_eq!(
                    stable.len() as u64,
                    expected_per_dept,
                    "dept {d}: stable matches missed or duplicated"
                );
                probes += 1;
                i += 1;
            }
            probes
        }));
    }
    // Mutator: churns extra triggers so class sizes cross the thresholds
    // in both directions and swaps race real epochs.
    let churn = {
        let ix = ix.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let tid = 1_000_000 + (n % 2_000);
                add(
                    &ix,
                    &format!("emp.dept = {}", tid % 50),
                    EventKind::Insert,
                    tid,
                );
                if n % 3 == 2 {
                    ix.remove_trigger(TriggerId(1_000_000 + (n.wrapping_sub(2) % 2_000)))
                        .unwrap();
                }
                n += 1;
            }
        })
    };

    let policy = GovernorPolicy::from_config(&cfg);
    for _ in 0..rounds {
        let report = ix.governor_pass(&policy);
        assert!(
            report.errors.is_empty(),
            "governor errors: {:?}",
            report.errors
        );
        for m in &report.migrations {
            if m.outcome.completed && m.outcome.entries > 1_000 {
                assert!(
                    m.outcome.swap_ns < m.outcome.build_ns.max(1_000_000),
                    "swap window ({}) not short vs build ({})",
                    m.outcome.swap_ns,
                    m.outcome.build_ns
                );
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    churn.join().unwrap();
    assert!(total > 0, "probers made progress");
    assert!(ix.governor_stats().passes.get() >= rounds as u64);
}

#[test]
fn governor_stress_concurrent_probe_insert_remove() {
    stress_governor(500, 4, 10);
}

#[test]
#[ignore = "long-running stress; run with --ignored"]
fn governor_stress_long() {
    stress_governor(2_000, 8, 200);
}
