//! The four constant-set organization strategies of §5.2:
//!
//! 1. **main memory list** — [`Org::MemList`] (and a denormalized variant
//!    used for the Figure-4 common-sub-expression-elimination ablation),
//! 2. **main memory index** — [`Org::MemHash`] for equality signatures,
//!    [`Org::MemInterval`] for range signatures,
//! 3. **non-indexed database table** — [`Org::DbTable`],
//! 4. **indexed database table** — [`Org::DbIndexed`] (the paper's
//!    clustered index on `[const1, ... constK]`).
//!
//! A deviation documented in DESIGN.md: the paper stores `restOfPredicate`
//! per row; since the *generalized* residual is identical for every member
//! of an equivalence class, we store it once on the signature and keep all
//! `m` constants in the row (`const1..constm`), which is equivalent and
//! normalizes the catalog.

use crate::interval::{Bound, IntervalIndex};
use std::sync::Arc;
use tman_common::fxhash::FxHashMap;
use tman_common::{ExprId, NodeId, Result, TmanError, TriggerId, Value};
use tman_expr::{IndexPlan, SelectionSignature};
use tman_sql::{Database, Index, Table};

/// One selection-predicate occurrence inside an equivalence class: a row of
/// the paper's `const_tableN` (`exprID`, `triggerID`, `nextNetworkNode`,
/// constants).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Unique id of this predicate expression.
    pub expr_id: ExprId,
    /// Trigger the predicate belongs to.
    pub trigger_id: TriggerId,
    /// A-TREAT node to hand matching tokens to.
    pub next_node: NodeId,
    /// The full constant vector (placeholder slot → value).
    pub consts: Arc<[Value]>,
}

impl Entry {
    fn key(&self, plan: &IndexPlan) -> Vec<Value> {
        match plan {
            IndexPlan::Equality { const_slots, .. } => const_slots
                .iter()
                .map(|&s| self.consts[s].clone())
                .collect(),
            _ => Vec::new(),
        }
    }

    fn interval(&self, plan: &IndexPlan) -> (Bound, Bound) {
        let IndexPlan::Range { lo, hi, .. } = plan else {
            return (Bound::Open, Bound::Open);
        };
        let b = |side: &Option<(usize, bool)>| match side {
            None => Bound::Open,
            Some((slot, inclusive)) => Bound::At {
                value: self.consts[*slot].clone(),
                inclusive: *inclusive,
            },
        };
        (b(lo), b(hi))
    }
}

/// Which strategy a constant set currently uses (reported in catalogs as
/// `constantSetOrganization`, and forceable for experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrgKind {
    /// Strategy 1.
    MemList,
    /// Strategy 1 without common-sub-expression elimination (Fig 4
    /// ablation only).
    MemListDenorm,
    /// Strategy 2 (hash for equality plans, interval index for ranges).
    MemIndex,
    /// Strategy 3.
    DbTable,
    /// Strategy 4.
    DbIndexed,
    /// A user-supplied organization (§9 extensibility; see
    /// [`crate::custom::CustomConstantSet`]). Carries the implementation's
    /// reported name.
    Custom(&'static str),
}

impl OrgKind {
    /// Catalog string.
    pub fn as_str(self) -> &'static str {
        match self {
            OrgKind::MemList => "mem_list",
            OrgKind::MemListDenorm => "mem_list_denorm",
            OrgKind::MemIndex => "mem_index",
            OrgKind::DbTable => "db_table",
            OrgKind::DbIndexed => "db_indexed_table",
            OrgKind::Custom(name) => name,
        }
    }
}

/// A normalized constant-set group: one constant (tuple) plus its
/// triggerID set (Figure 4).
pub struct Group {
    key: Vec<Value>,
    entries: Vec<Entry>,
}

/// Database-backed organization state.
pub struct DbOrg {
    table: Arc<Table>,
    /// Index over the plan's key columns (strategy 4 only).
    index: Option<Arc<Index>>,
    /// For range plans: index over the lo-bound column.
    range_index: Option<Arc<Index>>,
}

/// The storage behind one expression signature's equivalence class.
pub enum Org {
    /// Strategy 1 (normalized).
    MemList(Vec<Group>),
    /// Strategy 1, denormalized (no constant grouping).
    MemListDenorm(Vec<Entry>),
    /// Strategy 2, equality plans.
    MemHash(FxHashMap<Vec<Value>, Vec<Entry>>),
    /// Strategy 2, range plans.
    MemInterval(IntervalIndex<Entry>),
    /// Strategy 3.
    DbTable(DbOrg),
    /// Strategy 4.
    DbIndexed(DbOrg),
    /// A user-supplied organization (§9 extensibility).
    Custom(Box<dyn crate::custom::CustomConstantSet>),
}

impl Org {
    /// Fresh, empty organization of the given kind. `slot_types` describes
    /// the constant columns for database-backed strategies (see
    /// [`infer_slot_types`]).
    pub fn new(
        kind: OrgKind,
        sig: &SelectionSignature,
        slot_types: &[tman_common::DataType],
        sig_table_name: &str,
        db: Option<&Arc<Database>>,
    ) -> Result<Org> {
        Ok(match kind {
            OrgKind::Custom(_) => {
                return Err(TmanError::Invalid(
                    "custom organizations are installed via set_custom_org".into(),
                ))
            }
            OrgKind::MemList => Org::MemList(Vec::new()),
            OrgKind::MemListDenorm => Org::MemListDenorm(Vec::new()),
            OrgKind::MemIndex => match &sig.index_plan {
                IndexPlan::Range { .. } => Org::MemInterval(IntervalIndex::new()),
                _ => Org::MemHash(FxHashMap::default()),
            },
            OrgKind::DbTable | OrgKind::DbIndexed => {
                let db = db.ok_or_else(|| {
                    TmanError::Invalid(
                        "database-backed constant set requires an attached database".into(),
                    )
                })?;
                let table = create_const_table(db, slot_types, sig_table_name)?;
                let mut org = DbOrg {
                    table,
                    index: None,
                    range_index: None,
                };
                if kind == OrgKind::DbIndexed {
                    match &sig.index_plan {
                        IndexPlan::Equality { const_slots, .. } => {
                            let cols: Vec<String> = const_slots
                                .iter()
                                .map(|s| format!("const{}", s + 1))
                                .collect();
                            db.create_index(
                                &format!("{sig_table_name}_key"),
                                sig_table_name,
                                &cols,
                            )?;
                            org.index = org.table.index(&format!("{sig_table_name}_key"));
                        }
                        IndexPlan::Range {
                            lo: Some((slot, _)),
                            ..
                        } => {
                            db.create_index(
                                &format!("{sig_table_name}_lo"),
                                sig_table_name,
                                &[format!("const{}", slot + 1)],
                            )?;
                            org.range_index = org.table.index(&format!("{sig_table_name}_lo"));
                        }
                        // No indexable part: strategy 4 degenerates to 3.
                        _ => {}
                    }
                }
                if kind == OrgKind::DbIndexed {
                    Org::DbIndexed(org)
                } else {
                    Org::DbTable(org)
                }
            }
        })
    }

    /// Current strategy.
    pub fn kind(&self) -> OrgKind {
        match self {
            Org::MemList(_) => OrgKind::MemList,
            Org::MemListDenorm(_) => OrgKind::MemListDenorm,
            Org::MemHash(_) | Org::MemInterval(_) => OrgKind::MemIndex,
            Org::DbTable(_) => OrgKind::DbTable,
            Org::DbIndexed(_) => OrgKind::DbIndexed,
            Org::Custom(c) => OrgKind::Custom(c.name()),
        }
    }

    /// Insert one predicate occurrence.
    ///
    /// In the normalized organizations (Figure 4), members of the same
    /// constant group whose *entire* constant vector is identical share one
    /// allocation — the common-sub-expression elimination the paper's
    /// normalization buys.
    pub fn insert(&mut self, plan: &IndexPlan, mut entry: Entry) -> Result<()> {
        match self {
            Org::MemList(groups) => {
                let key = entry.key(plan);
                match groups.iter_mut().find(|g| g.key == key) {
                    Some(g) => {
                        share_consts(&mut entry, &g.entries);
                        g.entries.push(entry);
                    }
                    None => groups.push(Group {
                        key,
                        entries: vec![entry],
                    }),
                }
            }
            Org::MemListDenorm(list) => list.push(entry),
            Org::MemHash(map) => {
                let group = map.entry(entry.key(plan)).or_default();
                share_consts(&mut entry, group);
                group.push(entry);
            }
            Org::MemInterval(ix) => {
                let (lo, hi) = entry.interval(plan);
                ix.insert(lo, hi, entry);
            }
            Org::DbTable(org) | Org::DbIndexed(org) => {
                let mut row = vec![
                    Value::Int(entry.expr_id.raw() as i64),
                    Value::Int(entry.trigger_id.raw() as i64),
                    Value::Int(entry.next_node.raw() as i64),
                ];
                row.extend(entry.consts.iter().cloned());
                org.table.insert(row)?;
            }
            Org::Custom(c) => c.insert(plan, entry)?,
        }
        Ok(())
    }

    /// Remove every entry of `trigger_id`. Returns how many were removed.
    pub fn remove_trigger(&mut self, trigger_id: TriggerId) -> Result<usize> {
        let mut n = 0;
        match self {
            Org::MemList(groups) => {
                for g in groups.iter_mut() {
                    let before = g.entries.len();
                    g.entries.retain(|e| e.trigger_id != trigger_id);
                    n += before - g.entries.len();
                }
                groups.retain(|g| !g.entries.is_empty());
            }
            Org::MemListDenorm(list) => {
                let before = list.len();
                list.retain(|e| e.trigger_id != trigger_id);
                n = before - list.len();
            }
            Org::MemHash(map) => {
                for v in map.values_mut() {
                    let before = v.len();
                    v.retain(|e| e.trigger_id != trigger_id);
                    n += before - v.len();
                }
                map.retain(|_, v| !v.is_empty());
            }
            Org::MemInterval(ix) => {
                while ix.remove_where(|e| e.trigger_id == trigger_id).is_some() {
                    n += 1;
                }
            }
            Org::DbTable(org) | Org::DbIndexed(org) => {
                let mut dead = Vec::new();
                org.table.scan(|rid, row| {
                    if row.get(1) == &Value::Int(trigger_id.raw() as i64) {
                        dead.push(rid);
                    }
                    Ok(true)
                })?;
                n = dead.len();
                for rid in dead {
                    org.table.delete(rid)?;
                }
            }
            Org::Custom(c) => n = c.remove_trigger(trigger_id)?,
        }
        Ok(n)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        match self {
            Org::MemList(groups) => groups.iter().map(|g| g.entries.len()).sum(),
            Org::MemListDenorm(list) => list.len(),
            Org::MemHash(map) => map.values().map(Vec::len).sum(),
            Org::MemInterval(ix) => ix.len(),
            Org::DbTable(org) | Org::DbIndexed(org) => org.table.count().unwrap_or(0),
            Org::Custom(c) => c.len(),
        }
    }

    /// Is the organization empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate main-memory footprint in bytes (database organizations
    /// report only their handle, which is the point of strategies 3/4).
    /// Shared constant vectors (normalized layout) are counted once.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Org::MemList(groups) => groups
                .iter()
                .map(|g| {
                    std::mem::size_of::<Group>()
                        + g.key.iter().map(Value::heap_size).sum::<usize>()
                        + group_bytes(&g.entries)
                })
                .sum(),
            Org::MemListDenorm(list) => group_bytes_unshared(list),
            Org::MemHash(map) => {
                map.iter()
                    .map(|(k, v)| {
                        k.iter().map(Value::heap_size).sum::<usize>()
                            + group_bytes(v)
                            + std::mem::size_of::<Vec<Entry>>()
                    })
                    .sum::<usize>()
                    + map.capacity() * std::mem::size_of::<u64>()
            }
            Org::MemInterval(ix) => ix.memory_bytes(),
            Org::DbTable(_) | Org::DbIndexed(_) => std::mem::size_of::<DbOrg>(),
            Org::Custom(c) => c.memory_bytes(),
        }
    }

    /// Drain all entries (used when switching organization strategies).
    pub fn drain_entries(&mut self) -> Result<Vec<Entry>> {
        let mut out = Vec::new();
        self.for_each_entry(&mut |e| out.push(e.clone()))?;
        match self {
            Org::MemList(g) => g.clear(),
            Org::MemListDenorm(l) => l.clear(),
            Org::MemHash(m) => m.clear(),
            Org::MemInterval(ix) => while ix.remove_where(|_| true).is_some() {},
            Org::DbTable(org) | Org::DbIndexed(org) => {
                let mut rids = Vec::new();
                org.table.scan(|rid, _| {
                    rids.push(rid);
                    Ok(true)
                })?;
                for rid in rids {
                    org.table.delete(rid)?;
                }
            }
            // Custom organizations are replaced wholesale when switching;
            // the collected entries are all the caller needs.
            Org::Custom(_) => {}
        }
        Ok(out)
    }

    /// Visit every entry (diagnostics, org switching).
    pub fn for_each_entry(&self, visit: &mut dyn FnMut(&Entry)) -> Result<()> {
        match self {
            Org::MemList(groups) => {
                for g in groups {
                    for e in &g.entries {
                        visit(e);
                    }
                }
            }
            Org::MemListDenorm(list) => {
                for e in list {
                    visit(e);
                }
            }
            Org::MemHash(map) => {
                for v in map.values() {
                    for e in v {
                        visit(e);
                    }
                }
            }
            Org::MemInterval(ix) => {
                // No iteration API on the interval index; use a full-range
                // stab via collect on an unbounded probe is not possible,
                // so walk by repeated removal on a clone-free path is
                // avoided — instead we keep it simple: stab can't
                // enumerate, so MemInterval stores nothing else; enumerate
                // via internal visitor.
                ix.for_each(&mut |e| visit(e));
            }
            Org::DbTable(org) | Org::DbIndexed(org) => {
                org.table.scan(|_, row| {
                    visit(&entry_from_row(row));
                    Ok(true)
                })?;
            }
            Org::Custom(c) => c.for_each(visit)?,
        }
        Ok(())
    }

    /// Probe for candidate entries matching `probe`:
    /// * `Equality` plans get the token's key values,
    /// * `Range` plans get the token's single attribute value,
    /// * `None` plans visit every entry (the caller evaluates the full
    ///   generalized predicate).
    ///
    /// Visited entries are *candidates*: the indexable part E_I has matched
    /// (exactly for mem orgs; conservatively for db orgs, which re-check),
    /// and the caller must still test the residual E_NI.
    pub fn probe(
        &self,
        plan: &IndexPlan,
        probe: &ProbeValues<'_>,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<()> {
        match (self, probe) {
            (Org::MemList(groups), ProbeValues::Key(key)) => {
                for g in groups {
                    if g.key.as_slice() == *key {
                        for e in &g.entries {
                            visit(e);
                        }
                    }
                }
            }
            (Org::MemList(groups), ProbeValues::All) => {
                for g in groups {
                    for e in &g.entries {
                        visit(e);
                    }
                }
            }
            (Org::MemList(groups), ProbeValues::Stab(v)) => {
                // List organization of a range signature: linear check.
                for g in groups {
                    for e in &g.entries {
                        if interval_contains(plan, e, v) {
                            visit(e);
                        }
                    }
                }
            }
            (Org::MemListDenorm(list), ProbeValues::Key(key)) => {
                for e in list {
                    if e.key(plan).as_slice() == *key {
                        visit(e);
                    }
                }
            }
            (Org::MemListDenorm(list), ProbeValues::All) => {
                for e in list {
                    visit(e);
                }
            }
            (Org::MemListDenorm(list), ProbeValues::Stab(v)) => {
                for e in list {
                    if interval_contains(plan, e, v) {
                        visit(e);
                    }
                }
            }
            (Org::MemHash(map), ProbeValues::Key(key)) => {
                if let Some(v) = map.get(*key) {
                    for e in v {
                        visit(e);
                    }
                }
            }
            (Org::MemHash(map), ProbeValues::All) => {
                for v in map.values() {
                    for e in v {
                        visit(e);
                    }
                }
            }
            (Org::MemInterval(ix), ProbeValues::Stab(v)) => {
                ix.stab(v, visit);
            }
            (Org::DbTable(org), _) => {
                // Strategy 3: full scan, compare in the loop.
                org.table.scan(|_, row| {
                    let e = entry_from_row(row);
                    let hit = match probe {
                        ProbeValues::Key(key) => e.key(plan).as_slice() == *key,
                        ProbeValues::Stab(v) => interval_contains(plan, &e, v),
                        ProbeValues::All => true,
                    };
                    if hit {
                        visit(&e);
                    }
                    Ok(true)
                })?;
            }
            (Org::DbIndexed(org), ProbeValues::Key(key)) => match &org.index {
                Some(idx) => {
                    for (_, row) in org.table.index_prefix_lookup(idx, key)? {
                        visit(&entry_from_row(&row));
                    }
                }
                None => {
                    return Err(TmanError::Internal(
                        "indexed db org missing its key index".into(),
                    ))
                }
            },
            (Org::DbIndexed(org), ProbeValues::Stab(v)) => {
                match &org.range_index {
                    Some(idx) => {
                        // All rows whose lo bound <= v; hi re-checked below.
                        let rows = org.table.index_range_lookup(idx, None, Some((v, true)))?;
                        for (_, row) in rows {
                            let e = entry_from_row(&row);
                            if interval_contains(plan, &e, v) {
                                visit(&e);
                            }
                        }
                    }
                    None => {
                        // Open lower bounds everywhere: fall back to scan.
                        org.table.scan(|_, row| {
                            let e = entry_from_row(row);
                            if interval_contains(plan, &e, v) {
                                visit(&e);
                            }
                            Ok(true)
                        })?;
                    }
                }
            }
            (Org::DbIndexed(org), ProbeValues::All) => {
                org.table.scan(|_, row| {
                    visit(&entry_from_row(row));
                    Ok(true)
                })?;
            }
            (Org::Custom(c), probe) => c.probe(plan, probe, visit)?,
            (org, probe) => {
                return Err(TmanError::Internal(format!(
                    "organization {:?} cannot serve probe {:?}",
                    org.kind(),
                    probe.kind()
                )))
            }
        }
        Ok(())
    }
}

/// What a probe carries, derived from the token and the index plan.
pub enum ProbeValues<'a> {
    /// Equality key values (plan column order).
    Key(&'a [Value]),
    /// Single attribute value for range stabbing.
    Stab(&'a Value),
    /// No indexable part: visit all.
    All,
}

impl ProbeValues<'_> {
    fn kind(&self) -> &'static str {
        match self {
            ProbeValues::Key(_) => "key",
            ProbeValues::Stab(_) => "stab",
            ProbeValues::All => "all",
        }
    }
}

/// If an existing group member carries the same constant vector, share its
/// allocation (Figure-4 normalization).
fn share_consts(entry: &mut Entry, group: &[Entry]) {
    if let Some(owner) = group.iter().find(|e| e.consts == entry.consts) {
        entry.consts = owner.consts.clone();
    }
}

/// Bytes for a group of entries, counting each distinct constant
/// allocation once.
fn group_bytes(entries: &[Entry]) -> usize {
    let mut total = std::mem::size_of_val(entries);
    for (i, e) in entries.iter().enumerate() {
        let shared_earlier = entries[..i]
            .iter()
            .any(|p| Arc::ptr_eq(&p.consts, &e.consts));
        if !shared_earlier {
            total += e.consts.iter().map(Value::heap_size).sum::<usize>();
        }
    }
    total
}

/// Bytes counting every entry's constants separately (denormalized).
fn group_bytes_unshared(entries: &[Entry]) -> usize {
    entries
        .iter()
        .map(|e| {
            std::mem::size_of::<Entry>() + e.consts.iter().map(Value::heap_size).sum::<usize>()
        })
        .sum()
}

/// Does the entry's interval (per a Range plan) contain `v`? Exposed for
/// custom organizations.
pub fn interval_contains(plan: &IndexPlan, e: &Entry, v: &Value) -> bool {
    let IndexPlan::Range { lo, hi, .. } = plan else {
        return false;
    };
    let lo_ok = match lo {
        None => true,
        Some((slot, inc)) => {
            let b = &e.consts[*slot];
            match v.total_cmp(b) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *inc,
                std::cmp::Ordering::Less => false,
            }
        }
    };
    let hi_ok = match hi {
        None => true,
        Some((slot, inc)) => {
            let b = &e.consts[*slot];
            match v.total_cmp(b) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *inc,
                std::cmp::Ordering::Greater => false,
            }
        }
    };
    lo_ok && hi_ok
}

fn entry_from_row(row: &tman_common::Tuple) -> Entry {
    let consts: Vec<Value> = row.values()[3..].to_vec();
    Entry {
        expr_id: tman_common::ExprId(row.get(0).as_i64().unwrap_or(0) as u64),
        trigger_id: TriggerId(row.get(1).as_i64().unwrap_or(0) as u64),
        next_node: NodeId(row.get(2).as_i64().unwrap_or(0) as u32),
        consts: consts.into(),
    }
}

/// Infer per-slot column types from sample constants. Bind-time type
/// checking pins each placeholder to a column's type class, so the first
/// member of an equivalence class is representative: numeric slots become
/// FLOAT (integers coerce losslessly for catalog purposes), character
/// slots VARCHAR. A slot whose sample is NULL defaults to VARCHAR
/// (documented edge: a later numeric constant in that slot is rejected).
pub fn infer_slot_types(sample: &[Value]) -> Vec<tman_common::DataType> {
    use tman_common::DataType;
    sample
        .iter()
        .map(|v| match v {
            Value::Int(_) | Value::Float(_) => DataType::Float,
            Value::Str(_) | Value::Null => DataType::Varchar(65535),
        })
        .collect()
}

/// Create the paper's `const_tableN` for a signature:
/// `(exprID, triggerID, nextNetworkNode, const1, ..., constm)`.
fn create_const_table(
    db: &Arc<Database>,
    slot_types: &[tman_common::DataType],
    name: &str,
) -> Result<Arc<Table>> {
    use tman_common::{Column, DataType, Schema};
    let mut cols = vec![
        Column::new("exprID", DataType::Int),
        Column::new("triggerID", DataType::Int),
        Column::new("nextNetworkNode", DataType::Int),
    ];
    for (i, ty) in slot_types.iter().enumerate() {
        cols.push(Column::new(format!("const{}", i + 1), *ty));
    }
    let schema = Schema::new(cols)?;
    db.create_table(name, schema)?;
    db.table(name)
}
