//! `tman-predindex` — the scalable selection predicate index (§5, Figures
//! 3 & 4).
//!
//! Structure, top to bottom:
//!
//! * [`PredicateIndex`] — root: a hash table on data source ID,
//! * [`DataSourceIndex`] — one per source: the *expression signature
//!   list*,
//! * [`SignatureRuntime`] — one per unique expression signature: the
//!   *constant set* organized by one of the four §5.2 strategies
//!   ([`OrgKind`]), each constant linked to its *triggerID set* (the
//!   normalized Figure-4 form),
//! * [`Entry`] — one per predicate occurrence: `(exprID, triggerID,
//!   nextNetworkNode, constants)` — the `const_tableN` row.
//!
//! A token is matched (§5.4) by locating its data source index, then for
//! each signature whose operation code accepts the token (and whose update
//! column list is touched), probing the constant-set organization with the
//! values the index plan extracts from the token, and finally testing the
//! residual predicate `E_NI` of every candidate.
//!
//! Organizations are promoted automatically as equivalence classes grow
//! (list → index → indexed database table, thresholds in [`IndexConfig`]),
//! and can be forced for experiments via [`SignatureRuntime::set_org`].
//! Figure 5's partitioned probing for condition-level concurrency is
//! exposed through [`SignatureRuntime::probe_partition`].

pub mod custom;
pub mod governor;
pub mod interval;
pub mod org;

pub use custom::{CustomConstantSet, OrderedVecOrg};
pub use governor::{
    decide, GovernorPolicy, GovernorReport, GovernorStats, MigrationOutcome, MigrationReason,
    MigrationRecord, PartitionActivity, SigActivity, SigObservation,
};
pub use org::{Entry, Org, OrgKind, ProbeValues};

use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use tman_common::fxhash::FxHashMap;
use tman_common::stats::IndexStats;
use tman_common::{
    DataSourceId, ExprId, NodeId, Result, Schema, SignatureId, TriggerId, Tuple, UpdateDescriptor,
    Value,
};
use tman_expr::scalar::Env;
use tman_expr::{IndexPlan, SelectionSignature};
use tman_sql::Database;
use tman_telemetry::{CounterHandle, HistogramHandle, Registry};

/// Per-organization probe/match counters (`tman_index_probes_total{org=..}`
/// / `tman_index_matches_total{org=..}`): one pre-resolved handle pair per
/// [`OrgKind`], so the hot probe path never touches the registry. Default
/// (telemetry off or not attached) is all no-op handles.
#[derive(Clone)]
pub struct OrgCounters {
    probes: [CounterHandle; 6],
    matches: [CounterHandle; 6],
}

/// Fixed slot per organization kind; `Custom` variants share one slot.
fn org_slot(kind: OrgKind) -> usize {
    match kind {
        OrgKind::MemList => 0,
        OrgKind::MemListDenorm => 1,
        OrgKind::MemIndex => 2,
        OrgKind::DbTable => 3,
        OrgKind::DbIndexed => 4,
        OrgKind::Custom(_) => 5,
    }
}

/// Label values used for the `org` dimension, index-aligned with
/// [`OrgCounters`]'s slots.
pub const ORG_LABELS: [&str; 6] = [
    "mem_list",
    "mem_list_denorm",
    "mem_index",
    "db_table",
    "db_indexed_table",
    "custom",
];

impl Default for OrgCounters {
    fn default() -> OrgCounters {
        OrgCounters {
            probes: std::array::from_fn(|_| CounterHandle::noop()),
            matches: std::array::from_fn(|_| CounterHandle::noop()),
        }
    }
}

impl OrgCounters {
    /// Resolve the labeled counter families from a registry.
    pub fn from_registry(registry: &Registry) -> OrgCounters {
        OrgCounters {
            probes: std::array::from_fn(|i| {
                registry.counter("tman_index_probes_total", &[("org", ORG_LABELS[i])])
            }),
            matches: std::array::from_fn(|i| {
                registry.counter("tman_index_matches_total", &[("org", ORG_LABELS[i])])
            }),
        }
    }

    #[inline]
    fn probe(&self, kind: OrgKind) {
        self.probes[org_slot(kind)].bump();
    }

    #[inline]
    fn matched(&self, kind: OrgKind) {
        self.matches[org_slot(kind)].bump();
    }
}

/// Tuning knobs for organization promotion (§5.2: strategies 1/2 "make the
/// common case fast", 3/4 "are mandatory in a scalable trigger system").
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Entries above which a memory list becomes a memory index.
    pub list_to_index: usize,
    /// Entries above which a memory index spills to an indexed database
    /// table (requires an attached database; `usize::MAX` disables).
    pub index_to_db: usize,
    /// Use the normalized (common-sub-expression-eliminated) constant-set
    /// layout of Figure 4. Disable only for the E2 ablation.
    pub normalized: bool,
    /// Hand organization choice to the adaptive governor
    /// ([`governor`]): `insert()` stops promoting at the static
    /// thresholds, and transitions (promotions *and* demotions) happen in
    /// [`PredicateIndex::governor_pass`] — in the engine, on the drivers'
    /// maintenance path. Off by default: the legacy insert-time promotion
    /// stays in effect.
    pub adaptive: bool,
    /// Tagged execution of disjunctions (Kim & Madden): when a selection
    /// predicate's only obstacle to indexing is an OR over individually
    /// selectable atoms, the engine registers one entry per disjunct —
    /// each with a shared per-predicate tag deduped per token — instead of
    /// one residual-scan entry. Disable to force the legacy residual-scan
    /// behavior (the E15 baseline and the disjunction oracle's reference).
    pub tagged_disjunctions: bool,
}

impl Default for IndexConfig {
    fn default() -> IndexConfig {
        IndexConfig {
            list_to_index: 32,
            index_to_db: usize::MAX,
            normalized: true,
            adaptive: false,
            tagged_disjunctions: true,
        }
    }
}

/// A match produced by the predicate index: a token fully satisfied the
/// selection predicate `expr_id` of trigger `trigger_id`; the token should
/// next be delivered to `next_node` of that trigger's A-TREAT network.
#[derive(Debug, Clone, PartialEq)]
pub struct PredMatch {
    /// The matched predicate occurrence.
    pub expr_id: ExprId,
    /// Owning trigger.
    pub trigger_id: TriggerId,
    /// Where the token goes next.
    pub next_node: NodeId,
}

/// One unique expression signature and its equivalence class.
pub struct SignatureRuntime {
    /// Dense id (order of first appearance).
    pub id: SignatureId,
    /// The analyzed signature (key, generalized expression, plan, residual).
    pub sig: SelectionSignature,
    org: RwLock<Org>,
    config: IndexConfig,
    db: Option<Arc<Database>>,
    org_counters: OrgCounters,
    activity: SigActivity,
    partition: PartitionActivity,
}

impl SignatureRuntime {
    /// Current number of expressions in the equivalence class
    /// (`constantSetSize` in the catalog).
    pub fn len(&self) -> usize {
        self.org.read().len()
    }

    /// Is the class empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current organization strategy (`constantSetOrganization`).
    pub fn org_kind(&self) -> OrgKind {
        self.org.read().kind()
    }

    /// Approximate main-memory bytes used by the constant set.
    pub fn memory_bytes(&self) -> usize {
        self.org.read().memory_bytes()
    }

    /// Name of the constant table used by db-backed strategies.
    pub fn const_table_name(&self) -> String {
        format!("const_table_{}", self.id.raw())
    }

    /// The live activity stats block (probe/match rates, mutation epoch).
    pub fn activity(&self) -> &SigActivity {
        &self.activity
    }

    /// The condition-partition controller's activity block (published
    /// fan-out decision, controller-owned probe EWMA).
    pub fn partition_activity(&self) -> &PartitionActivity {
        &self.partition
    }

    fn insert(&self, entry: Entry) -> Result<()> {
        let mut org = self.org.write();
        org.insert(&self.sig.index_plan, entry)?;
        self.activity.bump_epoch();
        // In adaptive mode the governor owns all transitions; nothing is
        // promoted under the insert lock.
        if self.config.adaptive {
            return Ok(());
        }
        // Promotion thresholds.
        let len = org.len();
        let kind = org.kind();
        let next_kind = match kind {
            // User-installed organizations are never auto-promoted.
            OrgKind::Custom(_) => None,
            OrgKind::MemList | OrgKind::MemListDenorm if len > self.config.list_to_index => {
                // A signature with no indexable part has no index to build.
                if matches!(self.sig.index_plan, IndexPlan::None) {
                    None
                } else {
                    Some(OrgKind::MemIndex)
                }
            }
            OrgKind::MemIndex if len > self.config.index_to_db && self.db.is_some() => {
                Some(OrgKind::DbIndexed)
            }
            _ => None,
        };
        if let Some(next) = next_kind {
            Self::switch_locked(
                &mut org,
                &self.sig,
                next,
                &self.const_table_name(),
                self.db.as_ref(),
            )?;
        }
        Ok(())
    }

    /// Install a user-supplied organization (§9 extensibility), migrating
    /// the existing entries into it.
    pub fn set_custom_org(
        &self,
        mut custom: Box<dyn crate::custom::CustomConstantSet>,
    ) -> Result<()> {
        let mut org = self.org.write();
        let entries = org.drain_entries()?;
        for e in entries {
            custom.insert(&self.sig.index_plan, e)?;
        }
        *org = Org::Custom(custom);
        self.activity.bump_epoch();
        self.activity.clear_spill();
        Ok(())
    }

    /// Force a specific organization (experiments; also used at recovery to
    /// restore the catalog's recorded organization).
    pub fn set_org(&self, kind: OrgKind) -> Result<()> {
        let mut org = self.org.write();
        if org.kind() == kind {
            return Ok(());
        }
        Self::switch_locked(
            &mut org,
            &self.sig,
            kind,
            &self.const_table_name(),
            self.db.as_ref(),
        )?;
        self.activity.bump_epoch();
        self.activity.clear_spill();
        Ok(())
    }

    fn switch_locked(
        org: &mut Org,
        sig: &SelectionSignature,
        kind: OrgKind,
        table_name: &str,
        db: Option<&Arc<Database>>,
    ) -> Result<()> {
        let entries = org.drain_entries()?;
        let slot_types = entries
            .first()
            .map(|e| org::infer_slot_types(&e.consts))
            .unwrap_or_else(|| vec![tman_common::DataType::Varchar(65535); sig.num_consts]);
        // Reuse an existing constant table when switching between db
        // strategies repeatedly: drop it first if present.
        if matches!(kind, OrgKind::DbTable | OrgKind::DbIndexed) {
            if let Some(db) = db {
                if db.has_table(table_name) {
                    db.drop_table(table_name)?;
                }
            }
        }
        let mut fresh = Org::new(kind, sig, &slot_types, table_name, db)?;
        for e in entries {
            fresh.insert(&sig.index_plan, e)?;
        }
        *org = fresh;
        Ok(())
    }

    /// Probe the constant set with a token tuple, delivering fully-matched
    /// entries (indexable part *and* residual) to `visit`.
    pub fn probe(
        &self,
        tuple: &Tuple,
        stats: &IndexStats,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<()> {
        self.probe_partition(tuple, 0, 1, stats, visit)
    }

    /// Figure-5 partitioned probe: only entries in partition `part` of
    /// `nparts` are considered. Partition assignment hashes the entry's
    /// **stable** `expr_id` (`expr_id % nparts`), not its position in the
    /// candidate set: positions shift under concurrent inserts/removes and
    /// governor migrations, which would let one fan-out's partition tasks
    /// visit an entry twice or not at all. By identity, the assignment is
    /// the same for every task of a fan-out regardless of interleaved
    /// mutations, and the union over all `nparts` partitions is exactly
    /// the unpartitioned candidate set. `probe(t, ...)` is equivalent to
    /// `probe_partition(t, 0, 1, ...)`.
    pub fn probe_partition(
        &self,
        tuple: &Tuple,
        part: usize,
        nparts: usize,
        stats: &IndexStats,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<()> {
        self.probe_partition_traced(tuple, part, nparts, stats, None, visit)
    }

    /// [`probe_partition`](Self::probe_partition) that additionally records
    /// rest-of-predicate testing into a trace. When `trace` is an active
    /// span (the engine's per-probe `SigProbe` span), all residual
    /// predicate evaluations in this probe are aggregated into one
    /// [`SpanKind::RestTest`](tman_telemetry::SpanKind::RestTest) child
    /// span — span-per-candidate would drown the ring — whose duration is
    /// the summed test time and whose `arg_b` is the test count. The clock
    /// is read only around residual tests, and only when tracing.
    pub fn probe_partition_traced(
        &self,
        tuple: &Tuple,
        part: usize,
        nparts: usize,
        stats: &IndexStats,
        trace: Option<&tman_telemetry::SpanGuard>,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<()> {
        let trace = trace.filter(|s| s.is_active());
        let org = self.org.read();
        let org_kind = org.kind();
        stats.probes.bump();
        self.org_counters.probe(org_kind);
        self.activity.record_probe();
        // Build the probe values from the token per the index plan.
        let key_vals: Vec<Value>;
        let probe = match &self.sig.index_plan {
            IndexPlan::Equality { cols, .. } => {
                key_vals = cols.iter().map(|&c| tuple.get(c).clone()).collect();
                if key_vals.iter().any(Value::is_null) {
                    return Ok(()); // NULL never satisfies equality
                }
                ProbeValues::Key(&key_vals)
            }
            IndexPlan::Range { col, .. } => {
                let v = tuple.get(*col);
                if v.is_null() {
                    return Ok(());
                }
                key_vals = vec![v.clone()];
                ProbeValues::Stab(&key_vals[0])
            }
            IndexPlan::None => ProbeValues::All,
        };

        let bind = Some(tuple);
        let tuples = std::slice::from_ref(&bind);
        let needs_full = matches!(self.sig.index_plan, IndexPlan::None);
        let mut err: Option<tman_common::TmanError> = None;
        // Aggregated rest-test accounting (only touched when tracing).
        let mut rest_count = 0u64;
        let mut rest_ns = 0u64;
        let mut rest_start = 0u64;
        org.probe(&self.sig.index_plan, &probe, &mut |e| {
            if nparts > 1 && e.expr_id.raw() % nparts as u64 != part as u64 {
                return;
            }
            if err.is_some() {
                return;
            }
            let env = Env {
                tuples,
                consts: &e.consts,
            };
            let t0 = trace.map(|_| tman_telemetry::trace::now_ns());
            let passed = if needs_full {
                stats.residual_tests.bump();
                match self.sig.generalized.matches(&env) {
                    Ok(b) => b,
                    Err(e2) => {
                        err = Some(e2);
                        return;
                    }
                }
            } else {
                match &self.sig.residual {
                    None => true,
                    Some(resid) => {
                        stats.residual_tests.bump();
                        match resid.matches(&env) {
                            Ok(b) => b,
                            Err(e2) => {
                                err = Some(e2);
                                return;
                            }
                        }
                    }
                }
            };
            if let Some(t0) = t0 {
                if rest_count == 0 {
                    rest_start = t0;
                }
                rest_count += 1;
                rest_ns += tman_telemetry::trace::now_ns().saturating_sub(t0);
            }
            if passed {
                stats.matches.bump();
                self.org_counters.matched(org_kind);
                self.activity.record_match();
                visit(e);
            }
        })?;
        if rest_count > 0 {
            if let Some(span) = trace {
                span.child_complete(
                    tman_telemetry::SpanKind::RestTest,
                    rest_start,
                    rest_ns,
                    0,
                    rest_count,
                );
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Stable shard assignment: which engine shard owns this signature's
    /// async fan-out work. Hashes the dense signature id — the same
    /// stable-identity discipline as the `expr_id % nparts` partition
    /// filter, so the owner never moves under inserts, drops, or governor
    /// migrations.
    pub fn shard_of(&self, nshards: usize) -> usize {
        if nshards <= 1 {
            0
        } else {
            self.id.raw() as usize % nshards
        }
    }

    /// Batched probe: match several tagged tokens against the constant set
    /// under a **single** organization read-lock hold, delivering
    /// `(tag, entry)` for every full match. Equality plans sort the tokens
    /// by their extracted key and merge the sorted run into the
    /// organization — duplicate keys share one index lookup (the
    /// sort-merge into MemIndex constant sets) — while range/scan plans
    /// loop per token, still amortizing the lock hold and plan dispatch.
    /// Per-token accounting (probe counters, residual tests, matches,
    /// governor activity) is recorded exactly as `tokens.len()` calls to
    /// [`probe`](Self::probe) would record it.
    ///
    /// For any one tag the delivered entries and their order are identical
    /// to `probe(tuple, ...)`: the organization enumerates candidates for
    /// a key the same way on both paths, and the batch never partitions.
    /// A caller that buffers matches per tag and replays them in token
    /// order therefore reproduces the per-token path exactly.
    pub fn probe_batch(
        &self,
        tokens: &[(usize, &Tuple)],
        stats: &IndexStats,
        visit: &mut dyn FnMut(usize, &Entry),
    ) -> Result<()> {
        if tokens.is_empty() {
            return Ok(());
        }
        let org = self.org.read();
        let org_kind = org.kind();
        stats.probes.add(tokens.len() as u64);
        for _ in tokens {
            self.org_counters.probe(org_kind);
            self.activity.record_probe();
        }
        let needs_full = matches!(self.sig.index_plan, IndexPlan::None);
        // Residual (or full generalized) test for one (token, entry) pair —
        // the same evaluation the per-token path performs.
        let test = |tuple: &Tuple, e: &Entry| -> Result<bool> {
            let bind = Some(tuple);
            let env = Env {
                tuples: std::slice::from_ref(&bind),
                consts: &e.consts,
            };
            if needs_full {
                stats.residual_tests.bump();
                self.sig.generalized.matches(&env)
            } else {
                match &self.sig.residual {
                    None => Ok(true),
                    Some(resid) => {
                        stats.residual_tests.bump();
                        resid.matches(&env)
                    }
                }
            }
        };
        // One organization lookup shared by every token in `group`.
        let mut run_group = |probe: &ProbeValues, group: &[(usize, &Tuple)]| -> Result<()> {
            let mut err: Option<tman_common::TmanError> = None;
            org.probe(&self.sig.index_plan, probe, &mut |e| {
                if err.is_some() {
                    return;
                }
                for &(tag, tuple) in group {
                    match test(tuple, e) {
                        Ok(true) => {
                            stats.matches.bump();
                            self.org_counters.matched(org_kind);
                            self.activity.record_match();
                            visit(tag, e);
                        }
                        Ok(false) => {}
                        Err(e2) => {
                            err = Some(e2);
                            return;
                        }
                    }
                }
            })?;
            match err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        };
        match &self.sig.index_plan {
            IndexPlan::Equality { cols, .. } => {
                // Sort-merge: order tokens by extracted key, probe once per
                // distinct key. The sort is stable, so equal-key tokens keep
                // their arrival order (moot for callers that bucket by tag,
                // but cheap to guarantee).
                let mut keyed: Vec<(Vec<Value>, usize, &Tuple)> = Vec::with_capacity(tokens.len());
                for &(tag, tuple) in tokens {
                    let key: Vec<Value> = cols.iter().map(|&c| tuple.get(c).clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue; // NULL never satisfies equality
                    }
                    keyed.push((key, tag, tuple));
                }
                keyed.sort_by(|a, b| {
                    a.0.iter()
                        .zip(&b.0)
                        .map(|(x, y)| x.total_cmp(y))
                        .find(|o| *o != std::cmp::Ordering::Equal)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut i = 0;
                while i < keyed.len() {
                    let mut j = i + 1;
                    while j < keyed.len() && keyed[j].0 == keyed[i].0 {
                        j += 1;
                    }
                    let members: Vec<(usize, &Tuple)> =
                        keyed[i..j].iter().map(|(_, tag, t)| (*tag, *t)).collect();
                    run_group(&ProbeValues::Key(&keyed[i].0), &members)?;
                    i = j;
                }
            }
            IndexPlan::Range { col, .. } => {
                for &(tag, tuple) in tokens {
                    let v = tuple.get(*col);
                    if v.is_null() {
                        continue;
                    }
                    let stab = v.clone();
                    run_group(&ProbeValues::Stab(&stab), &[(tag, tuple)])?;
                }
            }
            IndexPlan::None => {
                for &(tag, tuple) in tokens {
                    run_group(&ProbeValues::All, &[(tag, tuple)])?;
                }
            }
        }
        Ok(())
    }

    /// Remove all entries of a trigger.
    pub fn remove_trigger(&self, trigger_id: TriggerId) -> Result<usize> {
        let mut org = self.org.write();
        let n = org.remove_trigger(trigger_id)?;
        if n > 0 {
            self.activity.bump_epoch();
        }
        Ok(n)
    }

    /// Visit all entries (diagnostics / tests).
    pub fn for_each_entry(&self, visit: &mut dyn FnMut(&Entry)) -> Result<()> {
        self.org.read().for_each_entry(visit)
    }

    /// What the governor sees this pass: organization, size, memory, and
    /// the decayed activity rates (which this refreshes).
    pub fn observe(&self, decay: f64) -> SigObservation {
        let (probe_rate, match_rate) = self.activity.tick(decay);
        let org = self.org.read();
        SigObservation {
            kind: org.kind(),
            len: org.len(),
            mem_bytes: org.memory_bytes(),
            probe_rate,
            match_rate,
            indexable: !matches!(self.sig.index_plan, IndexPlan::None),
            has_db: self.db.is_some(),
            spill_bytes: self.activity.spill_bytes(),
            budget_spilled: self.activity.budget_spilled(),
        }
    }

    /// Migrate the constant set to `target` **off the probe critical
    /// path**: snapshot the entries and mutation epoch under a read lock
    /// (probes continue), build the new organization unlocked, then swap
    /// it in under the write lock only if the epoch is unchanged — so the
    /// lock is held for a pointer swap, not the rebuild. A concurrent
    /// insert/remove invalidates the snapshot and the build is retried up
    /// to `max_retries` times before giving up (`completed == false`; the
    /// organization is left as it was).
    pub fn migrate_to(&self, target: OrgKind, max_retries: u32) -> Result<MigrationOutcome> {
        if matches!(target, OrgKind::Custom(_)) {
            return Err(tman_common::TmanError::Invalid(
                "custom organizations are installed via set_custom_org".into(),
            ));
        }
        let name = self.const_table_name();
        let to_db = matches!(target, OrgKind::DbTable | OrgKind::DbIndexed);
        let mut retries = 0u32;
        loop {
            // Snapshot under the read lock: probes proceed concurrently.
            let (from, entries, epoch0, mem_before) = {
                let org = self.org.read();
                let mut es: Vec<Entry> = Vec::new();
                org.for_each_entry(&mut |e| es.push(e.clone()))?;
                (org.kind(), es, self.activity.epoch(), org.memory_bytes())
            };
            let noop = MigrationOutcome {
                from,
                to: target,
                entries: entries.len(),
                build_ns: 0,
                swap_ns: 0,
                retries,
                completed: true,
                mem_bytes_before: mem_before,
            };
            if from == target {
                return Ok(noop);
            }
            let from_db = matches!(from, OrgKind::DbTable | OrgKind::DbIndexed);
            if from_db && to_db {
                // Both organizations want the same backing table; rebuild
                // under the lock (rare — the governor never does db→db).
                self.set_org(target)?;
                return Ok(noop);
            }
            let t_build = std::time::Instant::now();
            let slot_types = entries
                .first()
                .map(|e| org::infer_slot_types(&e.consts))
                .unwrap_or_else(|| {
                    vec![tman_common::DataType::Varchar(65535); self.sig.num_consts]
                });
            if to_db {
                // Drop any stale constant table left by an earlier
                // demotion or aborted attempt (the live org is in memory,
                // so nothing references it).
                if let Some(db) = self.db.as_ref() {
                    if db.has_table(&name) {
                        db.drop_table(&name)?;
                    }
                }
            }
            let mut fresh = Org::new(target, &self.sig, &slot_types, &name, self.db.as_ref())?;
            for e in &entries {
                fresh.insert(&self.sig.index_plan, e.clone())?;
            }
            let build_ns = t_build.elapsed().as_nanos() as u64;
            // The short swap window: epoch check + pointer swap.
            let t_swap = std::time::Instant::now();
            let mut fresh = Some(fresh);
            let old = {
                let mut org = self.org.write();
                if self.activity.epoch() == epoch0 {
                    self.activity.bump_epoch();
                    Some(std::mem::replace(&mut *org, fresh.take().unwrap()))
                } else {
                    None
                }
            };
            let swap_ns = t_swap.elapsed().as_nanos() as u64;
            match old {
                Some(old_org) => {
                    drop(old_org);
                    if from_db && !to_db {
                        // The class left the database: retire its table.
                        if let Some(db) = self.db.as_ref() {
                            if db.has_table(&name) {
                                db.drop_table(&name)?;
                            }
                        }
                    }
                    return Ok(MigrationOutcome {
                        from,
                        to: target,
                        entries: entries.len(),
                        build_ns,
                        swap_ns,
                        retries,
                        completed: true,
                        mem_bytes_before: mem_before,
                    });
                }
                None => {
                    // Concurrent mutation invalidated the snapshot: throw
                    // the build away (and its table, if any) and retry.
                    drop(fresh);
                    if to_db {
                        if let Some(db) = self.db.as_ref() {
                            let _ = db.drop_table(&name);
                        }
                    }
                    retries += 1;
                    if retries > max_retries {
                        return Ok(MigrationOutcome {
                            from,
                            to: target,
                            entries: entries.len(),
                            build_ns,
                            swap_ns,
                            retries,
                            completed: false,
                            mem_bytes_before: mem_before,
                        });
                    }
                }
            }
        }
    }
}

/// The per-data-source index: the expression signature list of Figure 3.
pub struct DataSourceIndex {
    /// The source this index serves.
    pub data_src: DataSourceId,
    /// The source's schema (update-column resolution, probe typing).
    pub schema: Schema,
    sigs: RwLock<Vec<Arc<SignatureRuntime>>>,
    /// Resolved `update(col,...)` ordinals per signature, parallel to
    /// `sigs` (empty = any column).
    update_cols: RwLock<Vec<Vec<usize>>>,
}

impl DataSourceIndex {
    /// Signatures registered on this source.
    pub fn signatures(&self) -> Vec<Arc<SignatureRuntime>> {
        self.sigs.read().clone()
    }
}

/// The root predicate index (Figure 3).
pub struct PredicateIndex {
    config: IndexConfig,
    db: Option<Arc<Database>>,
    sources: RwLock<FxHashMap<DataSourceId, Arc<DataSourceIndex>>>,
    next_sig: AtomicU32,
    stats: IndexStats,
    org_counters: OrgCounters,
    registry: Option<Arc<Registry>>,
    gov_stats: GovernorStats,
    gov_pass_ns: HistogramHandle,
    /// Serializes governor passes (migrations must not race each other).
    governor_lock: Mutex<()>,
}

impl PredicateIndex {
    /// Memory-only index (strategies 3/4 unavailable).
    pub fn new(config: IndexConfig) -> PredicateIndex {
        PredicateIndex {
            config,
            db: None,
            sources: RwLock::new(FxHashMap::default()),
            next_sig: AtomicU32::new(1),
            stats: IndexStats::default(),
            org_counters: OrgCounters::default(),
            registry: None,
            gov_stats: GovernorStats::default(),
            gov_pass_ns: HistogramHandle::noop(),
            governor_lock: Mutex::new(()),
        }
    }

    /// Index with a database attached for the disk-backed organizations.
    pub fn with_database(config: IndexConfig, db: Arc<Database>) -> PredicateIndex {
        let mut ix = Self::new(config);
        ix.db = Some(db);
        ix
    }

    /// Match/probe counters.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Wire per-organization probe/match counters into `registry` and
    /// register the aggregate [`IndexStats`] and [`GovernorStats`]
    /// counters there too. Call before the first
    /// [`PredicateIndex::add_predicate`] — signatures capture the handles
    /// at creation time. The registry is retained so governor transitions
    /// can record labeled `tman_org_promotions_total{from,to}` /
    /// `tman_org_demotions_total{from,to}` series lazily.
    pub fn attach_telemetry(&mut self, registry: &Arc<Registry>) {
        self.registry = Some(registry.clone());
        self.org_counters = OrgCounters::from_registry(registry);
        self.gov_pass_ns = registry.histogram("tman_governor_pass_ns", &[]);
        registry.register_counter(
            "tman_governor_passes_total",
            &[],
            self.gov_stats.passes.clone(),
        );
        registry.register_counter(
            "tman_governor_promotions_total",
            &[],
            self.gov_stats.promotions.clone(),
        );
        registry.register_counter(
            "tman_governor_demotions_total",
            &[],
            self.gov_stats.demotions.clone(),
        );
        registry.register_counter(
            "tman_governor_budget_spills_total",
            &[],
            self.gov_stats.budget_spills.clone(),
        );
        registry.register_counter(
            "tman_governor_aborted_migrations_total",
            &[],
            self.gov_stats.aborted_migrations.clone(),
        );
        registry.register_counter("tman_index_tokens_total", &[], self.stats.tokens.clone());
        registry.register_counter(
            "tman_index_signatures_probed_total",
            &[],
            self.stats.signatures_probed.clone(),
        );
        registry.register_counter(
            "tman_index_probes_all_total",
            &[],
            self.stats.probes.clone(),
        );
        registry.register_counter(
            "tman_index_residual_tests_total",
            &[],
            self.stats.residual_tests.clone(),
        );
        registry.register_counter(
            "tman_index_matches_all_total",
            &[],
            self.stats.matches.clone(),
        );
    }

    /// Register (or look up) a data source.
    pub fn register_source(&self, data_src: DataSourceId, schema: &Schema) -> Arc<DataSourceIndex> {
        let mut sources = self.sources.write();
        sources
            .entry(data_src)
            .or_insert_with(|| {
                Arc::new(DataSourceIndex {
                    data_src,
                    schema: schema.clone(),
                    sigs: RwLock::new(Vec::new()),
                    update_cols: RwLock::new(Vec::new()),
                })
            })
            .clone()
    }

    /// The index for a source, if registered.
    pub fn source(&self, data_src: DataSourceId) -> Option<Arc<DataSourceIndex>> {
        self.sources.read().get(&data_src).cloned()
    }

    /// §5.1 step 5: register one selection predicate. Finds or creates the
    /// signature (comparing against the source's expression signature
    /// list), then adds the constants row to the signature's constant set.
    /// Returns the signature runtime and whether it was newly created.
    #[allow(clippy::too_many_arguments)] // mirrors the const_tableN row
    pub fn add_predicate(
        &self,
        data_src: DataSourceId,
        schema: &Schema,
        sig: SelectionSignature,
        consts: Vec<Value>,
        expr_id: ExprId,
        trigger_id: TriggerId,
        next_node: NodeId,
    ) -> Result<(Arc<SignatureRuntime>, bool)> {
        let src = self.register_source(data_src, schema);
        let mut sigs = src.sigs.write();
        let existing = sigs.iter().position(|s| s.sig.key == sig.key);
        let (rt, is_new) = match existing {
            Some(i) => (sigs[i].clone(), false),
            None => {
                let id = SignatureId(self.next_sig.fetch_add(1, Ordering::Relaxed));
                let initial = if self.config.normalized {
                    OrgKind::MemList
                } else {
                    OrgKind::MemListDenorm
                };
                let update_cols = sig.update_cols.clone();
                let rt = Arc::new(SignatureRuntime {
                    id,
                    org: RwLock::new(Org::new(
                        initial,
                        &sig,
                        &[],
                        &format!("const_table_{}", id.raw()),
                        self.db.as_ref(),
                    )?),
                    sig,
                    config: self.config.clone(),
                    db: self.db.clone(),
                    org_counters: self.org_counters.clone(),
                    activity: SigActivity::new(),
                    partition: PartitionActivity::new(),
                });
                sigs.push(rt.clone());
                src.update_cols.write().push(update_cols);
                (rt, true)
            }
        };
        drop(sigs);
        rt.insert(Entry {
            expr_id,
            trigger_id,
            next_node,
            consts: consts.into(),
        })?;
        Ok((rt, is_new))
    }

    /// Remove all predicates of a trigger. Returns the number of entries
    /// removed. Signatures whose equivalence class becomes empty are kept
    /// (the paper keeps catalog rows too; re-creation is cheap either way).
    pub fn remove_trigger(&self, trigger_id: TriggerId) -> Result<usize> {
        let mut n = 0;
        for src in self.sources.read().values() {
            for sig in src.sigs.read().iter() {
                n += sig.remove_trigger(trigger_id)?;
            }
        }
        Ok(n)
    }

    /// §5.4: take an update descriptor and identify all predicates that
    /// match it.
    pub fn match_token(
        &self,
        token: &UpdateDescriptor,
        visit: &mut dyn FnMut(PredMatch),
    ) -> Result<()> {
        self.stats.tokens.bump();
        let Some(src) = self.source(token.data_src) else {
            return Ok(());
        };
        let sigs = src.sigs.read().clone();
        let update_cols = src.update_cols.read().clone();
        let tuple = token.probe_tuple();
        for (i, sig) in sigs.iter().enumerate() {
            if !sig.sig.key.event.accepts(token.op) {
                continue;
            }
            if !token.touches_columns(&update_cols[i]) {
                continue;
            }
            self.stats.signatures_probed.bump();
            sig.probe(tuple, &self.stats, &mut |e| {
                visit(PredMatch {
                    expr_id: e.expr_id,
                    trigger_id: e.trigger_id,
                    next_node: e.next_node,
                })
            })?;
        }
        Ok(())
    }

    /// Collect matches into a vector (tests / simple callers).
    pub fn match_token_vec(&self, token: &UpdateDescriptor) -> Result<Vec<PredMatch>> {
        let mut out = Vec::new();
        self.match_token(token, &mut |m| out.push(m))?;
        Ok(out)
    }

    /// Total number of unique signatures across all sources.
    pub fn num_signatures(&self) -> usize {
        self.sources
            .read()
            .values()
            .map(|s| s.sigs.read().len())
            .sum()
    }

    /// Total number of predicate entries.
    pub fn num_entries(&self) -> usize {
        self.sources
            .read()
            .values()
            .map(|s| s.sigs.read().iter().map(|g| g.len()).sum::<usize>())
            .sum()
    }

    /// Approximate main-memory footprint of all constant sets.
    pub fn memory_bytes(&self) -> usize {
        self.sources
            .read()
            .values()
            .map(|s| {
                s.sigs
                    .read()
                    .iter()
                    .map(|g| g.memory_bytes())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Every signature runtime across all sources.
    pub fn all_signatures(&self) -> Vec<Arc<SignatureRuntime>> {
        self.sources
            .read()
            .values()
            .flat_map(|s| s.sigs.read().clone())
            .collect()
    }

    /// Aggregate governor counters.
    pub fn governor_stats(&self) -> &GovernorStats {
        &self.gov_stats
    }

    /// Count a completed transition: aggregate promotion/demotion counter
    /// plus the labeled `{from,to}` series when telemetry is attached.
    fn record_transition(&self, from: OrgKind, to: OrgKind) {
        let promotion = governor::org_rank(to) > governor::org_rank(from);
        if promotion {
            self.gov_stats.promotions.bump();
        } else {
            self.gov_stats.demotions.bump();
        }
        if let Some(registry) = &self.registry {
            let name = if promotion {
                "tman_org_promotions_total"
            } else {
                "tman_org_demotions_total"
            };
            registry
                .counter(name, &[("from", from.as_str()), ("to", to.as_str())])
                .bump();
        }
    }

    /// One adaptive governor pass (see [`governor`]):
    ///
    /// 1. refresh every signature's decayed probe/match rates,
    /// 2. apply the hysteresis decisions ([`governor::decide`]) —
    ///    promotions and demotions, each migrated off the probe path,
    /// 3. enforce `policy.memory_budget` by force-spilling the coldest
    ///    (lowest decayed probe rate), largest classes to the database
    ///    until resident constant-set bytes fit.
    ///
    /// Passes are serialized internally; probes and inserts proceed
    /// concurrently throughout (a migration holds the org write lock only
    /// for its final pointer swap). Individual migration errors are
    /// collected into the report; the pass continues past them.
    pub fn governor_pass(&self, policy: &GovernorPolicy) -> GovernorReport {
        let _serial = self.governor_lock.lock();
        let t0 = std::time::Instant::now();
        self.gov_stats.passes.bump();
        let mut report = GovernorReport::default();
        let sigs = self.all_signatures();
        report.examined = sigs.len();
        let mut observations: Vec<SigObservation> =
            sigs.iter().map(|s| s.observe(policy.decay)).collect();
        let mem_resident = |kind: OrgKind| !matches!(kind, OrgKind::DbTable | OrgKind::DbIndexed);
        let mut mem_total: usize = observations
            .iter()
            .filter(|o| mem_resident(o.kind))
            .map(|o| o.mem_bytes)
            .sum();

        // Phase 1: hysteresis promotions and demotions.
        for (sig, obs) in sigs.iter().zip(observations.iter_mut()) {
            let Some(target) = governor::decide(obs, policy, mem_total) else {
                continue;
            };
            match sig.migrate_to(target, policy.max_swap_retries) {
                Ok(outcome) => {
                    if outcome.completed {
                        self.record_transition(outcome.from, outcome.to);
                        if mem_resident(outcome.from) && !mem_resident(outcome.to) {
                            sig.activity().set_spill(outcome.mem_bytes_before, false);
                            mem_total = mem_total.saturating_sub(outcome.mem_bytes_before);
                        } else if !mem_resident(outcome.from) && mem_resident(outcome.to) {
                            sig.activity().clear_spill();
                            mem_total += sig.memory_bytes();
                        }
                        obs.kind = outcome.to;
                        obs.mem_bytes = if mem_resident(outcome.to) {
                            sig.memory_bytes()
                        } else {
                            0
                        };
                    } else {
                        self.gov_stats.aborted_migrations.bump();
                    }
                    report.migrations.push(MigrationRecord {
                        sig: sig.id,
                        reason: MigrationReason::Hysteresis,
                        outcome,
                    });
                }
                Err(e) => report
                    .errors
                    .push(format!("governor: signature {}: {e}", sig.id.raw())),
            }
        }

        // Phase 2: memory-budget enforcement — spill the coldest large
        // classes until resident bytes fit.
        if let Some(budget) = policy.memory_budget {
            if mem_total > budget && self.db.is_some() {
                let mut candidates: Vec<usize> = (0..sigs.len())
                    .filter(|&i| {
                        let o = &observations[i];
                        matches!(
                            o.kind,
                            OrgKind::MemList | OrgKind::MemListDenorm | OrgKind::MemIndex
                        ) && o.mem_bytes >= policy.min_spill_bytes
                    })
                    .collect();
                // Coldest first; break rate ties by giving back the most
                // memory per migration.
                candidates.sort_by(|&a, &b| {
                    let (oa, ob) = (&observations[a], &observations[b]);
                    oa.probe_rate
                        .total_cmp(&ob.probe_rate)
                        .then(ob.mem_bytes.cmp(&oa.mem_bytes))
                });
                for i in candidates {
                    if mem_total <= budget {
                        break;
                    }
                    let sig = &sigs[i];
                    match sig.migrate_to(OrgKind::DbIndexed, policy.max_swap_retries) {
                        Ok(outcome) => {
                            if outcome.completed {
                                self.gov_stats.budget_spills.bump();
                                self.record_transition(outcome.from, outcome.to);
                                sig.activity().set_spill(outcome.mem_bytes_before, true);
                                mem_total = mem_total.saturating_sub(outcome.mem_bytes_before);
                            } else {
                                self.gov_stats.aborted_migrations.bump();
                            }
                            report.migrations.push(MigrationRecord {
                                sig: sig.id,
                                reason: MigrationReason::BudgetSpill,
                                outcome,
                            });
                        }
                        Err(e) => report
                            .errors
                            .push(format!("governor: signature {}: {e}", sig.id.raw())),
                    }
                }
            }
        }

        report.mem_bytes = mem_total;
        report.pass_ns = t0.elapsed().as_nanos() as u64;
        self.gov_pass_ns.record(report.pass_ns);
        report
    }
}

#[cfg(test)]
mod tests;
