//! The paper's §2 running example: the real-estate database and the
//! multi-table IrisHouseAlert trigger, processed through an A-TREAT
//! discrimination network.
//!
//! ```sh
//! cargo run --example real_estate
//! ```

use triggerman::{Config, TriggerMan};

fn main() -> tman_common::Result<()> {
    let tman = TriggerMan::open_memory(Config::default())?;

    // The paper's schema:
    //   house(hno, address, price, nno, spno)
    //   salesperson(spno, name, phone)
    //   represents(spno, nno)
    //   neighborhood(nno, name, location)
    for (ddl, src) in [
        (
            "create table house (hno int, address varchar(40), price float, nno int, spno int)",
            "house",
        ),
        (
            "create table salesperson (spno int, name varchar(20), phone varchar(16))",
            "salesperson",
        ),
        ("create table represents (spno int, nno int)", "represents"),
        (
            "create table neighborhood (nno int, name varchar(24), location varchar(24))",
            "neighborhood",
        ),
    ] {
        tman.run_sql(ddl)?;
        tman.execute_command(&format!("define data source {src} from table {src}"))?;
    }

    // Base data: Iris represents Maple Grove and River Park.
    tman.run_sql("insert into salesperson values (1, 'Iris', '555-0101')")?;
    tman.run_sql("insert into salesperson values (2, 'Hugo', '555-0202')")?;
    tman.run_sql("insert into neighborhood values (10, 'Maple Grove', 'north')")?;
    tman.run_sql("insert into neighborhood values (11, 'River Park', 'east')")?;
    tman.run_sql("insert into neighborhood values (12, 'Hilltop', 'west')")?;
    tman.run_sql("insert into represents values (1, 10)")?;
    tman.run_sql("insert into represents values (1, 11)")?;
    tman.run_sql("insert into represents values (2, 12)")?;
    tman.run_until_quiescent()?;

    // The trigger, verbatim from the paper: "if a new house is added which
    // is in a neighborhood that salesperson Iris represents then notify
    // her".
    let alerts = tman.subscribe("NewHouseInIrisNeighborhood");
    tman.execute_command(
        "create trigger IrisHouseAlert on insert to house \
         from salesperson s, house h, represents r \
         when s.name = 'Iris' and s.spno=r.spno and r.nno=h.nno \
         do raise event NewHouseInIrisNeighborhood(h.hno, h.address)",
    )?;

    // New listings arrive.
    tman.run_sql("insert into house values (500, '12 Maple Ave', 420000, 10, 1)")?;
    tman.run_sql("insert into house values (501, '3 Hilltop Rd', 380000, 12, 2)")?;
    tman.run_sql("insert into house values (502, '8 River Walk', 610000, 11, 1)")?;
    tman.run_until_quiescent()?;

    println!("Alerts for Iris:");
    for n in alerts.try_iter() {
        println!("  new house {} at {}", n.values[0], n.values[1]);
    }

    // Iris picks up Hilltop too — existing houses don't re-fire (the event
    // is *insert to house*), but the next listing there does.
    tman.run_sql("insert into represents values (1, 12)")?;
    tman.run_sql("insert into house values (503, '4 Hilltop Rd', 350000, 12, 2)")?;
    tman.run_until_quiescent()?;
    println!("After Iris takes on Hilltop:");
    for n in alerts.try_iter() {
        println!("  new house {} at {}", n.values[0], n.values[1]);
    }

    println!(
        "network: A-TREAT (virtual alpha nodes; {} tuples of stored state)",
        0
    );
    Ok(())
}
