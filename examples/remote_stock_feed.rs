//! The stock-alert scenario, split across processes the way §3 draws it:
//! data source programs and client applications talk to the trigger
//! system over the network, not through an in-process API.
//!
//! One process hosts the engine behind a [`tman_wire::WireServer`];
//! feeder threads connect as remote data sources and stream quotes
//! (credit-flow-controlled, group-committed into the update queue), and a
//! dashboard thread connects as a remote subscriber, receives every
//! `Spike` firing with a durable sequence number, and acks its watermark.
//! Kill and restart the dashboard and it resumes exactly where the last
//! ack left it — no duplicates, no gaps.
//!
//! ```sh
//! cargo run --release --example remote_stock_feed
//! ```

use rand::prelude::*;
use std::time::{Duration, Instant};
use tman_common::Value;
use tman_wire::{RemoteClient, WireServer};
use triggerman::{Config, TriggerMan};

const FEEDERS: usize = 4;
const QUOTES_PER_FEEDER: usize = 2_000;
const SYMBOLS: &[&str] = &[
    "ACME", "GLOBO", "INITECH", "HOOLI", "PIED", "UMBRel", "WAYNE", "STARK",
];

fn main() -> tman_common::Result<()> {
    // ----- server process: engine + wire tier ---------------------------
    let tman = TriggerMan::open_memory(Config::default())?;
    tman.execute_command("define data source quotes (symbol varchar(12), price float)")?;
    tman.execute_command(
        "create trigger spike from quotes when quotes.price > 550 \
         do raise event Spike(quotes.symbol, quotes.price)",
    )?;
    let server = WireServer::start(tman.clone(), "127.0.0.1:0")?;
    let drivers = tman.start_drivers();
    let addr = server.local_addr().to_string();
    println!("wire server on {addr}");

    // ----- client application: a dashboard subscribed to Spike ----------
    let dash_addr = addr.clone();
    let dashboard = std::thread::spawn(move || {
        let client = RemoteClient::new(dash_addr.clone());
        let mut sub = client
            .subscribe("dashboard", "Spike", 0)
            .expect("subscribe");
        let mut seen = 0u64;
        let mut last_seq = 0u64;
        let mut idle = 0u32;
        while idle < 20 {
            match sub.next(Duration::from_millis(100)).expect("next") {
                Some((seq, note)) => {
                    idle = 0;
                    seen += 1;
                    last_seq = seq;
                    if seen % 50 == 0 {
                        // Ack every 50th spike; the watermark is durable,
                        // so a reconnect resumes exactly here.
                        sub.ack(seq).expect("ack");
                        println!(
                            "  [dashboard] {} spikes, acked through #{seq} ({:?})",
                            seen, note.values
                        );
                    }
                }
                None => idle += 1,
            }
        }
        if last_seq > 0 {
            sub.ack(last_seq).expect("final ack");
        }
        // Simulated crash + reconnect: resume from the durable watermark.
        drop(sub);
        let mut again = client
            .subscribe("dashboard", "Spike", last_seq)
            .expect("reconnect");
        assert_eq!(again.watermark(), last_seq);
        if let Some((seq, _)) = again.next(Duration::from_millis(200)).expect("next") {
            assert!(seq > last_seq, "acked spike #{seq} redelivered");
        }
        println!("  [dashboard] reconnected at watermark {last_seq}: nothing redelivered below it");
        seen
    });

    // ----- data source programs: remote quote feeders -------------------
    let t0 = Instant::now();
    let feeders: Vec<_> = (0..FEEDERS)
        .map(|f| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client = RemoteClient::new(addr);
                let mut src = client.data_source("quotes").expect("data source");
                let mut rng = StdRng::seed_from_u64(7 + f as u64);
                for _ in 0..QUOTES_PER_FEEDER {
                    let sym = SYMBOLS[rng.gen_range(0..SYMBOLS.len())];
                    let price = rng.gen_range(1.0..600.0);
                    src.insert(vec![Value::str(sym), Value::Float(price)])
                        .expect("insert");
                }
                // One durability barrier covers the whole buffered burst.
                src.sync().expect("sync");
                let acked = src.acked();
                src.close().expect("close");
                acked
            })
        })
        .collect();
    let fed: u64 = feeders.into_iter().map(|f| f.join().expect("feeder")).sum();
    let dt = t0.elapsed();
    println!(
        "{FEEDERS} remote feeders shipped {fed} quotes in {dt:.2?} ({:.0} tokens/sec)",
        fed as f64 / dt.as_secs_f64()
    );

    let spikes = dashboard.join().expect("dashboard");
    println!(
        "dashboard received {spikes} spikes; server pushed {} notification frames",
        tman.metrics_registry()
            .counter("tman_wire_notifications_sent_total", &[])
            .get()
    );
    drivers.stop();
    Ok(())
}
