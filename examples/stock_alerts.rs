//! The introduction's web-scale scenario: "A web interface could allow
//! users to interactively create triggers over the Internet. This type of
//! architecture could lead to large numbers of triggers created in a
//! single database."
//!
//! 100,000 user-created price alerts collapse to a handful of expression
//! signatures; a stream of quote updates is matched against all of them
//! through the predicate index.
//!
//! ```sh
//! cargo run --release --example stock_alerts
//! ```

use rand::prelude::*;
use std::time::Instant;
use tman_common::{UpdateDescriptor, Value};
use triggerman::{Config, TriggerMan};

const USERS: usize = 100_000;
const SYMBOLS: &[&str] = &[
    "ACME", "GLOBO", "INITECH", "HOOLI", "PIED", "UMBRel", "WAYNE", "STARK",
];

fn main() -> tman_common::Result<()> {
    let tman = TriggerMan::open_memory(Config::default())?;
    // Quotes arrive as a *stream* data source (no backing table): the data
    // source API of §3.
    tman.execute_command("define data source quotes (symbol varchar(12), price float)")?;
    let src = tman.source("quotes")?.id;

    // Users create alerts through the (simulated) web interface. Three
    // structures only: price-above, price-below, and exact-symbol watch.
    let mut rng = StdRng::seed_from_u64(7);
    let t0 = Instant::now();
    for u in 0..USERS {
        let sym = SYMBOLS[rng.gen_range(0..SYMBOLS.len())];
        let threshold = rng.gen_range(10..500);
        let cmd = match u % 3 {
            0 => format!(
                "create trigger alert{u} from quotes \
                 when quotes.symbol = '{sym}' and quotes.price > {threshold} \
                 do raise event PriceAbove(quotes.symbol, quotes.price)"
            ),
            1 => format!(
                "create trigger alert{u} from quotes \
                 when quotes.symbol = '{sym}' and quotes.price < {threshold} \
                 do raise event PriceBelow(quotes.symbol, quotes.price)"
            ),
            _ => format!(
                "create trigger alert{u} from quotes when quotes.symbol = '{sym}' \
                 do raise event Tick(quotes.symbol)"
            ),
        };
        tman.execute_command(&cmd)?;
    }
    println!(
        "created {USERS} triggers in {:.2?} — {} unique expression signatures, {} predicate entries",
        t0.elapsed(),
        tman.predicate_index().num_signatures(),
        tman.predicate_index().num_entries()
    );

    // Clients listen for their events.
    let above = tman.subscribe("PriceAbove");
    let below = tman.subscribe("PriceBelow");
    let ticks = tman.subscribe("Tick");

    // Stream quotes through the data-source API.
    let n_quotes = 2_000;
    let t1 = Instant::now();
    for _ in 0..n_quotes {
        let sym = SYMBOLS[rng.gen_range(0..SYMBOLS.len())];
        let price = rng.gen_range(1.0..600.0);
        tman.push_token(UpdateDescriptor::insert(
            src,
            tman.tuple_for("quotes", vec![Value::str(sym), Value::Float(price)])?,
        ))?;
    }
    tman.run_until_quiescent()?;
    let dt = t1.elapsed();
    println!(
        "processed {n_quotes} quotes against {USERS} triggers in {dt:.2?} \
         ({:.0} tokens/sec)",
        n_quotes as f64 / dt.as_secs_f64()
    );
    println!(
        "alerts: {} above, {} below, {} ticks; index probes: {}",
        above.try_iter().count(),
        below.try_iter().count(),
        ticks.try_iter().count(),
        tman.predicate_index().stats().probes.get(),
    );
    if let Some(e) = tman.last_error() {
        println!("last error: {e}");
    }
    Ok(())
}
