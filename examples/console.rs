//! The TriggerMan console (§3): "a special application program that lets a
//! user directly interact with the system to create triggers, drop
//! triggers, start the system, shut it down, etc."
//!
//! ```sh
//! cargo run --example console
//! ```
//!
//! Commands: any TriggerMan command (`create trigger ...`, `define data
//! source ...`), any SQL statement (`create table ...`, `insert ...`,
//! `select ...`), plus console built-ins:
//!
//! ```text
//! .start            start driver threads    .stop         stop them
//! .stats            engine & index counters  .list         triggers
//! .drain            process pending tokens   .connections  connections
//! .serve ADDR       accept remote sources and subscribers over TCP
//! .serve-http ADDR  HTTP exposition (/metrics /healthz /tracez)
//! .quit
//! ```
//!
//! `.serve 127.0.0.1:7070` starts the wire tier
//! ([`tman_wire::WireServer`]); remote processes can then feed tokens with
//! [`tman_wire::RemoteClient`] and receive trigger firings with durable
//! watermark acks. Remember to `.start` the drivers so queued tokens are
//! actually processed.
//!
//! `.serve-http 127.0.0.1:9100` starts the engine's HTTP exposition
//! endpoint: `GET /metrics` (Prometheus text), `/metrics.json`,
//! `/healthz`, and `/tracez` (Chrome trace JSON of retained span trees).
//!
//! `show stats [<subsystem>]` is a TriggerMan command, not a built-in: it
//! renders the full telemetry snapshot (queue, driver, index, cache,
//! storage, actions, wire).

use std::io::{BufRead, Write};
use triggerman::{Config, TriggerMan};

fn main() {
    let tman = TriggerMan::open_memory(Config::default()).expect("open");
    let inbox = tman.events().subscribe_all();
    let mut drivers = None;
    let mut server: Option<tman_wire::WireServer> = None;
    let stdin = std::io::stdin();
    println!("TriggerMan console. '.quit' to exit, '.help' for commands.");
    loop {
        print!("tman> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".help" => {
                println!(".start .stop .stats .list .connections .drain .serve ADDR .serve-http ADDR .quit — or any TriggerMan/SQL command (try 'show stats')");
                continue;
            }
            ".start" => {
                if drivers.is_none() {
                    let pool = tman.start_drivers();
                    println!("started {} driver thread(s)", pool.len());
                    drivers = Some(pool);
                } else {
                    println!("drivers already running");
                }
                continue;
            }
            ".stop" => {
                if let Some(pool) = drivers.take() {
                    pool.stop();
                    println!("drivers stopped");
                } else {
                    println!("no drivers running");
                }
                continue;
            }
            ".drain" => {
                tman.run_until_quiescent().ok();
                println!("queue drained");
            }
            ".stats" => {
                let s = tman.stats();
                let ix = tman.predicate_index();
                println!(
                    "tokens={} firings={} actions={} errors={}",
                    s.tokens.get(),
                    s.firings.get(),
                    s.actions.get(),
                    s.errors.get()
                );
                println!(
                    "signatures={} entries={} probes={} matches={}",
                    ix.num_signatures(),
                    ix.num_entries(),
                    ix.stats().probes.get(),
                    ix.stats().matches.get()
                );
                println!(
                    "cache: resident={} hit_rate={:.2}",
                    tman.trigger_cache().len(),
                    tman.trigger_cache().stats().hit_rate()
                );
                continue;
            }
            ".list" => {
                for name in tman.trigger_names() {
                    println!("  {name}");
                }
                continue;
            }
            ".connections" => {
                for c in tman.connections() {
                    println!(
                        "  {} (type={}{}{})",
                        c.name,
                        c.dbtype,
                        c.host.map(|h| format!(", host={h}")).unwrap_or_default(),
                        if c.is_default { ", default" } else { "" }
                    );
                }
                continue;
            }
            _ => {}
        }
        // Matched before `.serve`, which is a prefix of this command.
        if let Some(addr) = line.strip_prefix(".serve-http") {
            let addr = addr.trim();
            let addr = if addr.is_empty() {
                "127.0.0.1:9100"
            } else {
                addr
            };
            match tman.serve_http(addr) {
                Ok(local) => println!(
                    "http exposition on http://{local} (/metrics /metrics.json /healthz /tracez)"
                ),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Some(addr) = line.strip_prefix(".serve") {
            if let Some(s) = &server {
                println!(
                    "already serving on {} ({} connection(s))",
                    s.local_addr(),
                    tman.metrics_registry()
                        .gauge("tman_wire_connections", &[])
                        .get()
                );
                continue;
            }
            let addr = addr.trim();
            let addr = if addr.is_empty() {
                "127.0.0.1:7070"
            } else {
                addr
            };
            match tman_wire::WireServer::start(tman.clone(), addr) {
                Ok(s) => {
                    println!("wire server listening on {}", s.local_addr());
                    server = Some(s);
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if line.starts_with('.') {
            println!("unknown console command; try .help");
            continue;
        }
        // Try TriggerMan command first, then SQL.
        let result = tman
            .execute_command(line)
            .map(|out| match out {
                triggerman::CommandOutput::Stats(report) => report,
                other => format!("{other:?}"),
            })
            .or_else(|cmd_err| {
                tman.run_sql(line)
                    .map(|r| match r {
                        tman_sql::ExecResult::Rows(rows) => {
                            let mut s = String::new();
                            for row in &rows {
                                s.push_str(&format!("{:?}\n", row.values()));
                            }
                            s.push_str(&format!("{} row(s)", rows.len()));
                            s
                        }
                        other => format!("{other:?}"),
                    })
                    .map_err(|sql_err| {
                        if line.to_lowercase().starts_with("create trigger")
                            || line.to_lowercase().starts_with("define")
                        {
                            cmd_err
                        } else {
                            sql_err
                        }
                    })
            });
        match result {
            Ok(msg) => println!("{msg}"),
            Err(e) => println!("error: {e}"),
        }
        // Show any notifications that arrived.
        for n in inbox.try_iter() {
            match n.message {
                Some(m) => println!("  [notify:{}] {}", n.trigger, m),
                None => println!("  [event:{} from {}] {:?}", n.event, n.trigger, n.values),
            }
        }
    }
    if let Some(pool) = drivers {
        pool.stop();
    }
}
