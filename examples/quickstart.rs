//! Quickstart: define a data source, create triggers, stream updates,
//! watch them fire.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use triggerman::{Config, TriggerMan};

fn main() -> tman_common::Result<()> {
    // 1. Open an in-memory TriggerMan instance (use `open_file` for a
    //    durable one).
    let tman = TriggerMan::open_memory(Config::default())?;

    // 2. Create a table and wrap it as a data source with update capture —
    //    the paper's "standard Informix triggers are created automatically
    //    by TriggerMan to capture updates to the table".
    tman.run_sql("create table emp (name varchar(32), salary float, dept int)")?;
    tman.execute_command("define data source emp from table emp")?;

    // 3. Subscribe to notifications, then create triggers. Both share the
    //    same expression signature `emp.salary > CONSTANT1` — only one
    //    signature exists in the predicate index no matter how many
    //    thresholds users register.
    let inbox = tman.subscribe("notify");
    tman.execute_command(
        "create trigger comfortable from emp when emp.salary > 80000 \
         do notify ':NEW.emp.name earns a comfortable :NEW.emp.salary'",
    )?;
    tman.execute_command(
        "create trigger modest from emp when emp.salary > 50000 \
         do notify ':NEW.emp.name is past 50k'",
    )?;
    println!(
        "predicate index: {} signatures for {} predicates",
        tman.predicate_index().num_signatures(),
        tman.predicate_index().num_entries()
    );

    // 4. Stream updates. Capture enqueues update descriptors; trigger
    //    processing is asynchronous (§3).
    tman.run_sql("insert into emp values ('Bob', 90000, 1)")?;
    tman.run_sql("insert into emp values ('Mia', 60000, 2)")?;
    tman.run_sql("insert into emp values ('Sam', 30000, 1)")?;

    // 5. Drain the queue (a production deployment runs `start_drivers()`
    //    instead and lets N driver threads call TmanTest periodically).
    tman.run_until_quiescent()?;

    for n in inbox.try_iter() {
        println!("[{}] {}", n.trigger, n.message.unwrap_or_default());
    }
    println!(
        "tokens={} firings={} actions={}",
        tman.stats().tokens.get(),
        tman.stats().firings.get(),
        tman.stats().actions.get()
    );
    Ok(())
}
